// Package job implements the Fuxi Job framework of paper §4: a DAG batch
// dataflow model described by a JSON file (Figure 6), executed by a
// two-level hierarchical scheduler — one JobMaster doing task-topology
// scheduling and per-task TaskMasters doing fine-grained instance scheduling
// (Figure 8) — with user-transparent JobMaster failover from lightweight
// instance-status snapshots, a multi-level machine blacklist, and backup
// instances for long-tail stragglers.
package job

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// AccessPoint is one end of a pipe: either a DFS file pattern
// ("pangu://...") or a task port ("T1:input").
type AccessPoint struct {
	FilePattern string `json:"FilePattern,omitempty"`
	AccessPoint string `json:"AccessPoint,omitempty"`
}

// Task returns the task name of a task-port access point ("" for files).
func (a AccessPoint) Task() string {
	if a.AccessPoint == "" {
		return ""
	}
	if i := strings.IndexByte(a.AccessPoint, ':'); i >= 0 {
		return a.AccessPoint[:i]
	}
	return a.AccessPoint
}

// Pipe is one data shuffle edge of the DAG.
type Pipe struct {
	Source      AccessPoint `json:"Source"`
	Destination AccessPoint `json:"Destination"`
}

// TaskSpec configures one task of the job.
type TaskSpec struct {
	// Instances is the parallelism (number of data partitions).
	Instances int `json:"Instances"`
	// CPUMilli/MemoryMB size one instance's container.
	CPUMilli int64 `json:"CPU"`
	MemoryMB int64 `json:"Memory"`
	// DurationMS is the nominal per-instance execution time the simulated
	// worker binary takes (stands in for the user's executable).
	DurationMS int64 `json:"DurationMS"`
	// NormalDurationMS is the user-declared normal running time that
	// distinguishes data skew from stragglers in the backup-instance
	// criteria (paper §4.3.2); 0 means 4x DurationMS.
	NormalDurationMS int64 `json:"NormalDurationMS,omitempty"`
	// DurationJitterPct draws each instance's execution time uniformly
	// from DurationMS ± this percentage, modelling natural per-partition
	// variance; 0 runs every instance for exactly DurationMS.
	DurationJitterPct int `json:"DurationJitterPct,omitempty"`
	// Priority orders this task's resource requests (smaller = higher).
	Priority int `json:"Priority,omitempty"`
	// MaxWorkers caps concurrent workers (containers); 0 means Instances.
	MaxWorkers int `json:"MaxWorkers,omitempty"`
}

// Description is the job's JSON description (paper Figure 6).
type Description struct {
	Name  string              `json:"Name"`
	Tasks map[string]TaskSpec `json:"Tasks"`
	Pipes []Pipe              `json:"Pipes"`
}

// Parse decodes and validates a JSON job description.
func Parse(data []byte) (*Description, error) {
	var d Description
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("job: bad description: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks structural sanity: tasks exist, pipes reference known
// tasks, and the graph is acyclic.
func (d *Description) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("job: empty name")
	}
	if len(d.Tasks) == 0 {
		return fmt.Errorf("job %q: no tasks", d.Name)
	}
	for name, t := range d.Tasks {
		if t.Instances <= 0 {
			return fmt.Errorf("job %q task %q: non-positive instances %d", d.Name, name, t.Instances)
		}
		if t.CPUMilli <= 0 || t.MemoryMB <= 0 {
			return fmt.Errorf("job %q task %q: non-positive resources", d.Name, name)
		}
		if t.DurationMS <= 0 {
			return fmt.Errorf("job %q task %q: non-positive duration", d.Name, name)
		}
	}
	for i, p := range d.Pipes {
		if src := p.Source.Task(); src != "" {
			if _, ok := d.Tasks[src]; !ok {
				return fmt.Errorf("job %q pipe %d: unknown source task %q", d.Name, i, src)
			}
		}
		if dst := p.Destination.Task(); dst != "" {
			if _, ok := d.Tasks[dst]; !ok {
				return fmt.Errorf("job %q pipe %d: unknown destination task %q", d.Name, i, dst)
			}
		}
		if p.Source.Task() == "" && p.Destination.Task() == "" {
			return fmt.Errorf("job %q pipe %d: file-to-file pipe", d.Name, i)
		}
	}
	if _, err := d.TopologicalOrder(); err != nil {
		return err
	}
	return nil
}

// Upstream returns the distinct task names feeding task in.
func (d *Description) Upstream(task string) []string {
	set := map[string]bool{}
	for _, p := range d.Pipes {
		if p.Destination.Task() == task {
			if src := p.Source.Task(); src != "" {
				set[src] = true
			}
		}
	}
	return sortedKeys(set)
}

// Downstream returns the distinct task names fed by task.
func (d *Description) Downstream(task string) []string {
	set := map[string]bool{}
	for _, p := range d.Pipes {
		if p.Source.Task() == task {
			if dst := p.Destination.Task(); dst != "" {
				set[dst] = true
			}
		}
	}
	return sortedKeys(set)
}

// InputFiles returns the DFS file patterns feeding task.
func (d *Description) InputFiles(task string) []string {
	var out []string
	for _, p := range d.Pipes {
		if p.Destination.Task() == task && p.Source.FilePattern != "" {
			out = append(out, p.Source.FilePattern)
		}
	}
	sort.Strings(out)
	return out
}

// OutputFiles returns the DFS file patterns task writes.
func (d *Description) OutputFiles(task string) []string {
	var out []string
	for _, p := range d.Pipes {
		if p.Source.Task() == task && p.Destination.FilePattern != "" {
			out = append(out, p.Destination.FilePattern)
		}
	}
	sort.Strings(out)
	return out
}

// TopologicalOrder returns task names so that every task appears after all
// its upstream tasks; it fails on cycles ("the framework ... analyzes the
// shuffle pipes to figure out the task topological order", paper §4.4).
func (d *Description) TopologicalOrder() ([]string, error) {
	indeg := make(map[string]int, len(d.Tasks))
	for name := range d.Tasks {
		indeg[name] = len(d.Upstream(name))
	}
	var ready []string
	for name, n := range indeg {
		if n == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		t := ready[0]
		ready = ready[1:]
		order = append(order, t)
		var unlocked []string
		for _, dn := range d.Downstream(t) {
			indeg[dn]--
			if indeg[dn] == 0 {
				unlocked = append(unlocked, dn)
			}
		}
		sort.Strings(unlocked)
		ready = append(ready, unlocked...)
	}
	if len(order) != len(d.Tasks) {
		return nil, fmt.Errorf("job %q: cycle in task graph", d.Name)
	}
	return order, nil
}

// TotalInstances sums instance counts over all tasks.
func (d *Description) TotalInstances() int {
	n := 0
	for _, t := range d.Tasks {
		n += t.Instances
	}
	return n
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
