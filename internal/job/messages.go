package job

import "repro/internal/sim"

// Job-level wire messages between the JobMaster and its TaskWorkers. They
// travel over the same simulated network as the resource protocol, so a
// dead JobMaster simply stops receiving reports while workers keep running
// (the property JobMaster failover relies on, paper §4.3.1).

// AssignInstance asks a worker to execute one instance attempt.
type AssignInstance struct {
	Task     string
	Instance int
	Attempt  int
	// Duration is the nominal execution time; the worker's machine may
	// stretch it (SlowMachine faults).
	Duration sim.Time
	// Backup marks speculative copies launched against stragglers.
	Backup bool
}

// KillInstance cancels the instance a worker is running (e.g. the original
// finished before its backup).
type KillInstance struct {
	Task     string
	Instance int
}

// InstanceReport is a worker's periodic (and completion) status report to
// the JobMaster: "All TaskWorkers will periodically report their status
// including execution progresses to the TaskMasters" (paper §4.2).
type InstanceReport struct {
	Worker   string
	Machine  string
	Task     string
	Instance int
	Attempt  int
	Done     bool
	Backup   bool
	// Progress in [0,1] for running instances.
	Progress float64
	// Idle marks a worker with no current instance (ready for work).
	Idle bool
}
