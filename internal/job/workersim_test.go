package job

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/transport"
)

// fakeEnv is a scriptable cluster ground truth.
type fakeEnv struct {
	dead map[string]bool
	slow map[string]float64
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{dead: map[string]bool{}, slow: map[string]float64{}}
}

func (e *fakeEnv) ProcAlive(machine, workerID string) bool { return !e.dead[workerID] }
func (e *fakeEnv) Slowdown(machine string) float64 {
	if f, ok := e.slow[machine]; ok {
		return f
	}
	return 1
}

type wsHarness struct {
	eng     *sim.Engine
	net     *transport.Net
	env     *fakeEnv
	rt      *Runtime
	reports []InstanceReport
}

func newWSHarness(t *testing.T) *wsHarness {
	t.Helper()
	eng := sim.NewEngine(3)
	net := transport.NewNet(eng)
	h := &wsHarness{eng: eng, net: net, env: newFakeEnv()}
	h.rt = NewRuntime(eng, net, h.env, "jobx", sim.Second)
	net.Register("jobx", func(_ transport.EndpointID, m transport.Message) {
		if r, ok := m.(InstanceReport); ok {
			h.reports = append(h.reports, r)
		}
	})
	return h
}

func (h *wsHarness) assign(workerID string, inst, attempt int, d sim.Time) {
	h.net.Send("jobx", WorkerEndpoint("jobx", workerID), AssignInstance{
		Task: "T", Instance: inst, Attempt: attempt, Duration: d,
	})
	h.eng.Run(h.eng.Now() + sim.Millisecond)
}

func (h *wsHarness) doneReports() []InstanceReport {
	var out []InstanceReport
	for _, r := range h.reports {
		if r.Done {
			out = append(out, r)
		}
	}
	return out
}

func TestWorkerExecutesAndReports(t *testing.T) {
	h := newWSHarness(t)
	h.rt.Ensure("w1", "m1")
	h.assign("w1", 7, 0, 2*sim.Second)
	h.eng.Run(h.eng.Now() + 3*sim.Second)
	done := h.doneReports()
	if len(done) != 1 || done[0].Instance != 7 || done[0].Attempt != 0 {
		t.Fatalf("done reports = %v", done)
	}
}

func TestWorkerSlowdownStretchesExecution(t *testing.T) {
	h := newWSHarness(t)
	h.env.slow["m1"] = 5
	h.rt.Ensure("w1", "m1")
	h.assign("w1", 1, 0, 2*sim.Second)
	h.eng.Run(h.eng.Now() + 3*sim.Second)
	if len(h.doneReports()) != 0 {
		t.Fatal("slow worker finished at normal speed")
	}
	h.eng.Run(h.eng.Now() + 8*sim.Second)
	if len(h.doneReports()) != 1 {
		t.Fatal("slow worker never finished")
	}
}

func TestWorkerPeriodicProgressAndIdleReports(t *testing.T) {
	h := newWSHarness(t)
	w := h.rt.Ensure("w1", "m1")
	w.Task = "T"
	h.eng.Run(h.eng.Now() + 2500*sim.Millisecond)
	idle := 0
	for _, r := range h.reports {
		if r.Idle {
			idle++
			if r.Task != "T" {
				t.Errorf("idle report task = %q", r.Task)
			}
		}
	}
	if idle < 2 {
		t.Fatalf("idle reports = %d, want >= 2", idle)
	}
	h.reports = nil
	h.assign("w1", 3, 1, 10*sim.Second)
	h.eng.Run(h.eng.Now() + 3*sim.Second)
	prog := 0
	for _, r := range h.reports {
		if !r.Idle && !r.Done {
			prog++
			if r.Progress <= 0 || r.Progress > 0.99 {
				t.Errorf("progress = %v", r.Progress)
			}
			if r.Instance != 3 || r.Attempt != 1 {
				t.Errorf("progress report = %+v", r)
			}
		}
	}
	if prog < 2 {
		t.Errorf("progress reports = %d", prog)
	}
}

func TestDeadWorkerNeitherCompletesNorReports(t *testing.T) {
	h := newWSHarness(t)
	h.rt.Ensure("w1", "m1")
	h.assign("w1", 1, 0, 2*sim.Second)
	h.env.dead["w1"] = true // process killed mid-run
	h.reports = nil
	h.eng.Run(h.eng.Now() + 5*sim.Second)
	if len(h.reports) != 0 {
		t.Fatalf("dead worker reported: %v", h.reports)
	}
	if h.rt.Live() != 0 {
		t.Error("dead worker sim not reaped")
	}
}

func TestKillInstanceCancelsExecution(t *testing.T) {
	h := newWSHarness(t)
	h.rt.Ensure("w1", "m1")
	h.assign("w1", 1, 0, 2*sim.Second)
	h.net.Send("jobx", WorkerEndpoint("jobx", "w1"), KillInstance{Task: "T", Instance: 1})
	h.eng.Run(h.eng.Now() + 5*sim.Second)
	if len(h.doneReports()) != 0 {
		t.Fatal("killed instance completed")
	}
	// The worker reports idle immediately after the kill.
	sawIdle := false
	for _, r := range h.reports {
		if r.Idle {
			sawIdle = true
		}
	}
	if !sawIdle {
		t.Error("no idle report after kill")
	}
}

func TestDuplicateAssignmentIgnored(t *testing.T) {
	h := newWSHarness(t)
	h.rt.Ensure("w1", "m1")
	h.assign("w1", 1, 0, 2*sim.Second)
	h.eng.Run(h.eng.Now() + sim.Second)
	h.assign("w1", 1, 0, 2*sim.Second) // duplicate mid-run: must not restart the clock
	h.eng.Run(h.eng.Now() + 1500*sim.Millisecond)
	if len(h.doneReports()) != 1 {
		t.Fatalf("done = %d, want 1 (original timing preserved)", len(h.doneReports()))
	}
}

func TestReassignmentPreemptsCurrent(t *testing.T) {
	h := newWSHarness(t)
	h.rt.Ensure("w1", "m1")
	h.assign("w1", 1, 0, 10*sim.Second)
	h.assign("w1", 2, 0, sim.Second) // new assignment replaces the old
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	done := h.doneReports()
	if len(done) != 1 || done[0].Instance != 2 {
		t.Fatalf("done = %v, want instance 2 only", done)
	}
	h.eng.Run(h.eng.Now() + 20*sim.Second)
	for _, r := range h.doneReports() {
		if r.Instance == 1 {
			t.Fatal("preempted instance still completed")
		}
	}
}

func TestEnsureIdempotent(t *testing.T) {
	h := newWSHarness(t)
	a := h.rt.Ensure("w1", "m1")
	b := h.rt.Ensure("w1", "m1")
	if a != b {
		t.Error("Ensure created a duplicate worker")
	}
	if h.rt.Worker("w1") != a {
		t.Error("Worker lookup mismatch")
	}
	if h.rt.Worker("ghost") != nil {
		t.Error("unknown worker non-nil")
	}
}
