// Package graysort reproduces the paper's sort benchmarks (§5.3, Table 4:
// 100 TB GraySort in 2538 s = 2.364 TB/min on 5000 nodes; PetaSort: 1 PB in
// 6 h on 2800 nodes). Absolute numbers on the authors' testbed cannot be
// re-measured without their hardware, so the reproduction splits the time
// into two factors:
//
//   - a hardware phase model (read/sort, shuffle, merge/write bounded by
//     disk and NIC bandwidth) that is identical for every framework, and
//   - a framework overhead factor measured by actually running a
//     sort-shaped job through the real Fuxi stack (or the YARN-style
//     baseline) on a scaled simulated cluster.
//
// The shape of Table 4 — Fuxi beating the Hadoop-style baseline by a large
// factor — then follows from measured scheduling behaviour (container
// reuse, locality-tree regrant, backup instances), not from constants.
//
// The package also contains a real in-memory sort kernel over gensort-style
// 100-byte records for examples and micro-benchmarks.
package graysort

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
)

// ClusterSpec describes sort-benchmark hardware.
type ClusterSpec struct {
	Nodes        int
	DisksPerNode int
	DiskMBps     int
	NetMBps      int
}

// PaperGraySortCluster is the paper's §5 testbed: 5000 nodes, 12×2 TB
// disks, two gigabit ports.
var PaperGraySortCluster = ClusterSpec{Nodes: 5000, DisksPerNode: 12, DiskMBps: 100, NetMBps: 250}

// PaperPetaSortCluster is §5.3's PetaSort setup: 2800 nodes, 33600 disks.
var PaperPetaSortCluster = ClusterSpec{Nodes: 2800, DisksPerNode: 12, DiskMBps: 100, NetMBps: 250}

// YahooCluster approximates the 2012 Yahoo record setup from Table 4: 2100
// nodes, 12×3 TB disks.
var YahooCluster = ClusterSpec{Nodes: 2100, DisksPerNode: 12, DiskMBps: 100, NetMBps: 125}

// SortSpec sizes the dataset.
type SortSpec struct {
	DataTB float64
	// SpillCompression divides intermediate volume (paper PetaSort: "1x
	// sort spill compression factor"); 1 = none.
	SpillCompression float64
}

// PhaseTimes is the hardware lower bound per phase, in seconds.
type PhaseTimes struct {
	ReadSortSec   float64
	ShuffleSec    float64
	MergeWriteSec float64
}

// TotalSec sums the phases without overlap.
func (p PhaseTimes) TotalSec() float64 { return p.ReadSortSec + p.ShuffleSec + p.MergeWriteSec }

// diskEfficiency derates aggregate JBOD bandwidth for seek interference and
// filesystem overhead; netEfficiency derates the NIC for all-to-all
// incast. Both are documented modeling constants (EXPERIMENTS.md,
// "Modeling constants").
const (
	diskEfficiency = 0.5
	netEfficiency  = 0.7
)

// HardwareModel computes per-phase times for an external two-pass sort:
// the map side reads the input and writes sorted spills (2 disk passes),
// the shuffle moves every byte across the NIC, and the reduce side reads
// spills and writes the output (2 more disk passes).
func HardwareModel(c ClusterSpec, s SortSpec) PhaseTimes {
	if c.Nodes <= 0 {
		return PhaseTimes{}
	}
	comp := s.SpillCompression
	if comp < 1 {
		comp = 1
	}
	perNodeMB := s.DataTB * 1e6 / float64(c.Nodes)
	diskMBps := float64(c.DisksPerNode*c.DiskMBps) * diskEfficiency
	netMBps := float64(c.NetMBps) * netEfficiency
	return PhaseTimes{
		ReadSortSec:   (perNodeMB + perNodeMB/comp) / diskMBps, // input read + spill write
		ShuffleSec:    perNodeMB / comp / netMBps,
		MergeWriteSec: (perNodeMB/comp + perNodeMB) / diskMBps, // spill read + output write
	}
}

// Result reports one sort benchmark estimate.
type Result struct {
	System       string
	DataTB       float64
	HardwareSec  float64
	Overhead     float64 // measured framework factor (>= 1)
	ElapsedSec   float64
	ThroughputTB float64 // TB per minute
}

func (r Result) String() string {
	return fmt.Sprintf("%-10s %6.0f TB in %6.0f s  (%.3f TB/min, hw %.0f s x overhead %.2f)",
		r.System, r.DataTB, r.ElapsedSec, r.ThroughputTB, r.HardwareSec, r.Overhead)
}

// Estimate combines the hardware model with a measured framework overhead
// factor. overlap in [0,1) credits pipeline overlap between phases (reading
// the next partition while shuffling the previous): 0 = strictly serial
// phases. Degenerate specs (no nodes, no disks, no bandwidth, no data) are
// rejected rather than producing a zero elapsed time and +Inf throughput.
func Estimate(system string, c ClusterSpec, s SortSpec, overhead, overlap float64) (Result, error) {
	if c.Nodes <= 0 {
		return Result{}, fmt.Errorf("graysort: estimate %q: cluster needs a positive node count, got %d", system, c.Nodes)
	}
	if c.DisksPerNode <= 0 || c.DiskMBps <= 0 || c.NetMBps <= 0 {
		return Result{}, fmt.Errorf("graysort: estimate %q: cluster needs positive disk and network bandwidth (disks=%d diskMBps=%d netMBps=%d)",
			system, c.DisksPerNode, c.DiskMBps, c.NetMBps)
	}
	if s.DataTB <= 0 {
		return Result{}, fmt.Errorf("graysort: estimate %q: data size must be positive, got %v TB", system, s.DataTB)
	}
	p := HardwareModel(c, s)
	base := p.TotalSec() * (1 - overlap)
	if min := maxPhase(p); base < min {
		base = min // can never beat the slowest phase
	}
	if overhead < 1 {
		overhead = 1
	}
	elapsed := base * overhead
	return Result{
		System: system, DataTB: s.DataTB,
		HardwareSec: p.TotalSec(), Overhead: overhead,
		ElapsedSec:   elapsed,
		ThroughputTB: s.DataTB / (elapsed / 60),
	}, nil
}

func maxPhase(p PhaseTimes) float64 {
	m := p.ReadSortSec
	if p.ShuffleSec > m {
		m = p.ShuffleSec
	}
	if p.MergeWriteSec > m {
		m = p.MergeWriteSec
	}
	return m
}

// ---------------------------------------------------------------------------
// real sort kernel (gensort-style records)
// ---------------------------------------------------------------------------

// RecordSize and KeySize follow the GraySort record format: 100-byte
// records with 10-byte keys.
const (
	RecordSize = 100
	KeySize    = 10
)

// Records is a contiguous buffer of 100-byte records.
type Records []byte

// Count returns the number of whole records.
func (r Records) Count() int { return len(r) / RecordSize }

// Key returns the i-th record's key bytes.
func (r Records) Key(i int) []byte {
	return r[i*RecordSize : i*RecordSize+KeySize]
}

// Generate produces n random records, reproducible from the rng.
func Generate(rng *rand.Rand, n int) Records {
	buf := make([]byte, n*RecordSize)
	rng.Read(buf)
	return buf
}

// Sort orders the records by key, stably, returning a new buffer.
func Sort(r Records) Records {
	n := r.Count()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return bytes.Compare(r.Key(idx[a]), r.Key(idx[b])) < 0
	})
	out := make([]byte, len(r))
	for pos, i := range idx {
		copy(out[pos*RecordSize:(pos+1)*RecordSize], r[i*RecordSize:(i+1)*RecordSize])
	}
	return out
}

// Sorted reports whether the records are in key order.
func Sorted(r Records) bool {
	n := r.Count()
	for i := 1; i < n; i++ {
		if bytes.Compare(r.Key(i-1), r.Key(i)) > 0 {
			return false
		}
	}
	return true
}

// Merge merges pre-sorted runs into one sorted buffer — the reduce-side
// kernel of the sort pipeline. A trailing partial record (a run whose length
// is not a multiple of RecordSize) is dropped: only whole records merge.
func Merge(runs []Records) Records {
	total := 0
	for _, r := range runs {
		// Count whole records only: consumption below advances in Count()
		// units, so counting raw len(r) would make the target unreachable.
		total += r.Count() * RecordSize
	}
	out := make([]byte, 0, total)
	pos := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if pos[i] >= r.Count() {
				continue
			}
			if best == -1 || bytes.Compare(r.Key(pos[i]), runs[best].Key(pos[best])) < 0 {
				best = i
			}
		}
		rec := runs[best][pos[best]*RecordSize : (pos[best]+1)*RecordSize]
		out = append(out, rec...)
		pos[best]++
	}
	return out
}

// Partition splits records into p key-range buckets (map-side shuffle
// partitioning). Buckets are determined by the first key byte.
func Partition(r Records, p int) []Records {
	if p <= 0 {
		p = 1
	}
	out := make([]Records, p)
	n := r.Count()
	for i := 0; i < n; i++ {
		b := int(r.Key(i)[0]) * p / 256
		rec := r[i*RecordSize : (i+1)*RecordSize]
		out[b] = append(out[b], rec...)
	}
	return out
}
