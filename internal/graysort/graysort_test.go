package graysort

import (
	"math/rand"
	"testing"
)

func TestHardwareModelScalesWithData(t *testing.T) {
	small := HardwareModel(PaperGraySortCluster, SortSpec{DataTB: 50})
	big := HardwareModel(PaperGraySortCluster, SortSpec{DataTB: 100})
	if big.TotalSec() <= small.TotalSec() {
		t.Error("more data should take longer")
	}
	ratio := big.TotalSec() / small.TotalSec()
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("scaling ratio = %.2f, want ~2", ratio)
	}
}

func TestHardwareModelScalesWithNodes(t *testing.T) {
	half := PaperGraySortCluster
	half.Nodes = 2500
	a := HardwareModel(PaperGraySortCluster, SortSpec{DataTB: 100})
	b := HardwareModel(half, SortSpec{DataTB: 100})
	if b.TotalSec() <= a.TotalSec() {
		t.Error("fewer nodes should take longer")
	}
	if (HardwareModel(ClusterSpec{}, SortSpec{DataTB: 1})) != (PhaseTimes{}) {
		t.Error("zero-node model should be zero")
	}
}

func TestHardwareModelCompression(t *testing.T) {
	plain := HardwareModel(PaperPetaSortCluster, SortSpec{DataTB: 1000, SpillCompression: 1})
	comp := HardwareModel(PaperPetaSortCluster, SortSpec{DataTB: 1000, SpillCompression: 2})
	if comp.ShuffleSec >= plain.ShuffleSec {
		t.Error("compression should shrink shuffle")
	}
	// Spill writes/reads shrink with compression but the raw input read and
	// final output write do not, so the disk phases shrink by less than 2x.
	if comp.ReadSortSec >= plain.ReadSortSec {
		t.Error("compression should shrink the spill-write share of the map phase")
	}
	if comp.ReadSortSec <= plain.ReadSortSec/2 {
		t.Error("raw input read must not compress away")
	}
}

func TestEstimateShape(t *testing.T) {
	// With the same hardware, the framework with lower overhead wins.
	fuxi := Estimate("fuxi", PaperGraySortCluster, SortSpec{DataTB: 100}, 1.3, 0.3)
	hadoop := Estimate("hadoop", PaperGraySortCluster, SortSpec{DataTB: 100}, 2.6, 0.3)
	if fuxi.ThroughputTB <= hadoop.ThroughputTB {
		t.Error("lower overhead must give higher throughput")
	}
	if fuxi.ElapsedSec <= 0 || fuxi.ThroughputTB <= 0 {
		t.Errorf("bad result %+v", fuxi)
	}
	// Overhead below 1 clamps.
	r := Estimate("x", PaperGraySortCluster, SortSpec{DataTB: 100}, 0.1, 0)
	if r.Overhead != 1 {
		t.Errorf("overhead = %v, want clamped 1", r.Overhead)
	}
	// Overlap cannot beat the slowest phase.
	p := HardwareModel(PaperGraySortCluster, SortSpec{DataTB: 100})
	r2 := Estimate("y", PaperGraySortCluster, SortSpec{DataTB: 100}, 1, 0.99)
	if r2.ElapsedSec < maxPhase(p)-1e-9 {
		t.Errorf("elapsed %.1f beats slowest phase %.1f", r2.ElapsedSec, maxPhase(p))
	}
}

func TestSortKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := Generate(rng, 1000)
	if recs.Count() != 1000 {
		t.Fatalf("count = %d", recs.Count())
	}
	if Sorted(recs) {
		t.Fatal("random records already sorted (suspicious)")
	}
	sorted := Sort(recs)
	if !Sorted(sorted) {
		t.Fatal("Sort did not sort")
	}
	if sorted.Count() != 1000 {
		t.Fatalf("lost records: %d", sorted.Count())
	}
	// Input untouched.
	if Sorted(recs) {
		t.Error("Sort mutated its input")
	}
}

func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Sort(Generate(rng, 100))
	b := Sort(Generate(rng, 150))
	c := Sort(Generate(rng, 1))
	merged := Merge([]Records{a, b, c})
	if merged.Count() != 251 {
		t.Fatalf("merged count = %d", merged.Count())
	}
	if !Sorted(merged) {
		t.Fatal("merge output unsorted")
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := Generate(rng, 2000)
	parts := Partition(recs, 8)
	if len(parts) != 8 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.Count()
	}
	if total != 2000 {
		t.Fatalf("partitioned total = %d", total)
	}
	// Sorting each partition then concatenating yields a fully sorted
	// stream (range partitioning by leading key byte).
	var all Records
	for _, p := range parts {
		all = append(all, Sort(p)...)
	}
	if !Sorted(all) {
		t.Error("range-partitioned sort not globally ordered")
	}
}

func TestOverheadConfigIdeal(t *testing.T) {
	cfg := OverheadConfig{Nodes: 10, WorkersPerNode: 2, Waves: 3, TaskDurationMS: 2000}
	if got := cfg.IdealSec(); got != 12 {
		t.Errorf("ideal = %v, want 12", got)
	}
	if cfg.instances() != 60 {
		t.Errorf("instances = %d", cfg.instances())
	}
}

func TestMeasuredOverheadsOrdering(t *testing.T) {
	// The headline shape of Table 4: Fuxi's measured overhead factor must
	// be materially below the YARN-style baseline's on the same workload.
	cfg := OverheadConfig{
		Nodes: 10, WorkersPerNode: 4, Waves: 4,
		TaskDurationMS: 15_000, WorkerStartDelayMS: 2_000, Seed: 42,
	}
	fuxi, err := MeasureFuxi(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := MeasureBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overhead factors: fuxi=%.2f baseline=%.2f", fuxi, base)
	if fuxi < 1 {
		t.Errorf("fuxi factor %.2f below 1 (impossible)", fuxi)
	}
	if base <= fuxi {
		t.Errorf("baseline factor %.2f not above fuxi %.2f", base, fuxi)
	}
}
