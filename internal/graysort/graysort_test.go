package graysort

import (
	"math"
	"math/rand"
	"testing"
)

func TestHardwareModelScalesWithData(t *testing.T) {
	small := HardwareModel(PaperGraySortCluster, SortSpec{DataTB: 50})
	big := HardwareModel(PaperGraySortCluster, SortSpec{DataTB: 100})
	if big.TotalSec() <= small.TotalSec() {
		t.Error("more data should take longer")
	}
	ratio := big.TotalSec() / small.TotalSec()
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("scaling ratio = %.2f, want ~2", ratio)
	}
}

func TestHardwareModelScalesWithNodes(t *testing.T) {
	half := PaperGraySortCluster
	half.Nodes = 2500
	a := HardwareModel(PaperGraySortCluster, SortSpec{DataTB: 100})
	b := HardwareModel(half, SortSpec{DataTB: 100})
	if b.TotalSec() <= a.TotalSec() {
		t.Error("fewer nodes should take longer")
	}
	if (HardwareModel(ClusterSpec{}, SortSpec{DataTB: 1})) != (PhaseTimes{}) {
		t.Error("zero-node model should be zero")
	}
}

func TestHardwareModelCompression(t *testing.T) {
	plain := HardwareModel(PaperPetaSortCluster, SortSpec{DataTB: 1000, SpillCompression: 1})
	comp := HardwareModel(PaperPetaSortCluster, SortSpec{DataTB: 1000, SpillCompression: 2})
	if comp.ShuffleSec >= plain.ShuffleSec {
		t.Error("compression should shrink shuffle")
	}
	// Spill writes/reads shrink with compression but the raw input read and
	// final output write do not, so the disk phases shrink by less than 2x.
	if comp.ReadSortSec >= plain.ReadSortSec {
		t.Error("compression should shrink the spill-write share of the map phase")
	}
	if comp.ReadSortSec <= plain.ReadSortSec/2 {
		t.Error("raw input read must not compress away")
	}
}

func mustEstimate(t *testing.T, system string, c ClusterSpec, s SortSpec, overhead, overlap float64) Result {
	t.Helper()
	r, err := Estimate(system, c, s, overhead, overlap)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEstimateShape(t *testing.T) {
	// With the same hardware, the framework with lower overhead wins.
	fuxi := mustEstimate(t, "fuxi", PaperGraySortCluster, SortSpec{DataTB: 100}, 1.3, 0.3)
	hadoop := mustEstimate(t, "hadoop", PaperGraySortCluster, SortSpec{DataTB: 100}, 2.6, 0.3)
	if fuxi.ThroughputTB <= hadoop.ThroughputTB {
		t.Error("lower overhead must give higher throughput")
	}
	if fuxi.ElapsedSec <= 0 || fuxi.ThroughputTB <= 0 {
		t.Errorf("bad result %+v", fuxi)
	}
	// Overhead below 1 clamps.
	r := mustEstimate(t, "x", PaperGraySortCluster, SortSpec{DataTB: 100}, 0.1, 0)
	if r.Overhead != 1 {
		t.Errorf("overhead = %v, want clamped 1", r.Overhead)
	}
	// Overlap cannot beat the slowest phase.
	p := HardwareModel(PaperGraySortCluster, SortSpec{DataTB: 100})
	r2 := mustEstimate(t, "y", PaperGraySortCluster, SortSpec{DataTB: 100}, 1, 0.99)
	if r2.ElapsedSec < maxPhase(p)-1e-9 {
		t.Errorf("elapsed %.1f beats slowest phase %.1f", r2.ElapsedSec, maxPhase(p))
	}
}

// TestEstimateRejectsDegenerateSpecs is the regression test for the
// +Inf-throughput bug: Estimate with Nodes <= 0 used to report
// ElapsedSec = 0 and ThroughputTB = +Inf instead of failing.
func TestEstimateRejectsDegenerateSpecs(t *testing.T) {
	noNodes := PaperGraySortCluster
	noNodes.Nodes = 0
	noDisks := PaperGraySortCluster
	noDisks.DisksPerNode = 0
	noNet := PaperGraySortCluster
	noNet.NetMBps = 0
	cases := []struct {
		name    string
		cluster ClusterSpec
		spec    SortSpec
		wantErr bool
	}{
		{"zero nodes", noNodes, SortSpec{DataTB: 100}, true},
		{"negative nodes", ClusterSpec{Nodes: -5, DisksPerNode: 12, DiskMBps: 100, NetMBps: 250}, SortSpec{DataTB: 100}, true},
		{"zero disks", noDisks, SortSpec{DataTB: 100}, true},
		{"zero net", noNet, SortSpec{DataTB: 100}, true},
		{"zero data", PaperGraySortCluster, SortSpec{}, true},
		{"negative data", PaperGraySortCluster, SortSpec{DataTB: -1}, true},
		{"compression below 1 clamps", PaperGraySortCluster, SortSpec{DataTB: 100, SpillCompression: 0.25}, false},
		{"valid", PaperGraySortCluster, SortSpec{DataTB: 100, SpillCompression: 1}, false},
	}
	for _, tc := range cases {
		r, err := Estimate(tc.name, tc.cluster, tc.spec, 1.5, 0.2)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: want error, got %+v", tc.name, r)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if r.ElapsedSec <= 0 || math.IsInf(r.ThroughputTB, 0) || r.ThroughputTB <= 0 {
			t.Errorf("%s: degenerate result %+v", tc.name, r)
		}
	}
	// SpillCompression < 1 clamps to no compression: same estimate as 1x.
	clamped := mustEstimate(t, "c", PaperGraySortCluster, SortSpec{DataTB: 100, SpillCompression: 0.25}, 1.5, 0.2)
	plain := mustEstimate(t, "p", PaperGraySortCluster, SortSpec{DataTB: 100, SpillCompression: 1}, 1.5, 0.2)
	if clamped.ElapsedSec != plain.ElapsedSec {
		t.Errorf("compression < 1 should clamp to 1: %v vs %v", clamped.ElapsedSec, plain.ElapsedSec)
	}
}

func TestSortKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := Generate(rng, 1000)
	if recs.Count() != 1000 {
		t.Fatalf("count = %d", recs.Count())
	}
	if Sorted(recs) {
		t.Fatal("random records already sorted (suspicious)")
	}
	sorted := Sort(recs)
	if !Sorted(sorted) {
		t.Fatal("Sort did not sort")
	}
	if sorted.Count() != 1000 {
		t.Fatalf("lost records: %d", sorted.Count())
	}
	// Input untouched.
	if Sorted(recs) {
		t.Error("Sort mutated its input")
	}
}

func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Sort(Generate(rng, 100))
	b := Sort(Generate(rng, 150))
	c := Sort(Generate(rng, 1))
	merged := Merge([]Records{a, b, c})
	if merged.Count() != 251 {
		t.Fatalf("merged count = %d", merged.Count())
	}
	if !Sorted(merged) {
		t.Fatal("merge output unsorted")
	}
}

// TestMergeTruncatedRun is the regression test for the partial-record bug:
// Merge used to size its target from raw byte lengths while consuming whole
// records, so a run with a trailing partial record made the loop's exit
// condition unreachable and it panicked indexing runs[-1].
func TestMergeTruncatedRun(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Sort(Generate(rng, 10))
	b := Sort(Generate(rng, 5))
	b = b[:len(b)-37] // trailing partial record: 4 whole records + 63 bytes
	merged := Merge([]Records{a, b})
	if got, want := merged.Count(), 14; got != want {
		t.Fatalf("merged count = %d, want %d (partial record must be dropped)", got, want)
	}
	if len(merged)%RecordSize != 0 {
		t.Fatalf("merged length %d is not record-aligned", len(merged))
	}
	if !Sorted(merged) {
		t.Fatal("merge output unsorted")
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := Generate(rng, 2000)
	parts := Partition(recs, 8)
	if len(parts) != 8 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.Count()
	}
	if total != 2000 {
		t.Fatalf("partitioned total = %d", total)
	}
	// Sorting each partition then concatenating yields a fully sorted
	// stream (range partitioning by leading key byte).
	var all Records
	for _, p := range parts {
		all = append(all, Sort(p)...)
	}
	if !Sorted(all) {
		t.Error("range-partitioned sort not globally ordered")
	}
}

func TestOverheadConfigIdeal(t *testing.T) {
	cfg := OverheadConfig{Nodes: 10, WorkersPerNode: 2, Waves: 3, TaskDurationMS: 2000}
	if got := cfg.IdealSec(); got != 12 {
		t.Errorf("ideal = %v, want 12", got)
	}
	if cfg.instances() != 60 {
		t.Errorf("instances = %d", cfg.instances())
	}
}

func TestMeasuredOverheadsOrdering(t *testing.T) {
	// The headline shape of Table 4: Fuxi's measured overhead factor must
	// be materially below the YARN-style baseline's on the same workload.
	cfg := OverheadConfig{
		Nodes: 10, WorkersPerNode: 4, Waves: 4,
		TaskDurationMS: 15_000, WorkerStartDelayMS: 2_000, Seed: 42,
	}
	fuxi, err := MeasureFuxi(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := MeasureBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overhead factors: fuxi=%.2f baseline=%.2f", fuxi, base)
	if fuxi < 1 {
		t.Errorf("fuxi factor %.2f below 1 (impossible)", fuxi)
	}
	if base <= fuxi {
		t.Errorf("baseline factor %.2f not above fuxi %.2f", base, fuxi)
	}
}

// Kernel benchmarks: the per-partition sort and the k-way merge are the hot
// loops of the data-plane verification pass (internal/scale dataplane mode);
// CI runs them in the -benchtime 1x smoke lane.
func BenchmarkSortRecords(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	recs := Generate(rng, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make(Records, len(recs))
		copy(cp, recs)
		Sort(cp)
	}
}

func BenchmarkMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	runs := make([]Records, 16)
	for i := range runs {
		runs[i] = Sort(Generate(rng, 1_000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := Merge(runs); !Sorted(m) {
			b.Fatal("merge output unsorted")
		}
	}
}
