package graysort

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
)

// OverheadConfig shapes the scaled sort-shaped run used to measure a
// framework's scheduling overhead factor. The workload is Waves waves of
// one instance per worker across the whole scaled cluster, for a map phase
// and a reduce phase.
type OverheadConfig struct {
	// Nodes is the scaled cluster size (e.g. 50 standing in for 5000).
	Nodes int
	// WorkersPerNode concurrent containers per machine.
	WorkersPerNode int
	// Waves of instances each worker processes per phase.
	Waves int
	// TaskDurationMS is the per-instance execution time, derived from the
	// hardware model's per-phase time.
	TaskDurationMS int64
	// WorkerStartDelayMS is the process launch cost (binary download +
	// exec). Fuxi pays it once per worker; the baseline pays it once per
	// instance because containers are never reused.
	WorkerStartDelayMS int64
	Seed               int64
}

// IdealSec is the perfect-scheduler makespan: both phases run their waves
// back to back with zero scheduling cost (one worker start absorbed).
func (c OverheadConfig) IdealSec() float64 {
	return 2 * float64(c.Waves) * float64(c.TaskDurationMS) / 1000
}

func (c OverheadConfig) instances() int { return c.Nodes * c.WorkersPerNode * c.Waves }

// MeasureFuxi runs the sort-shaped DAG through the full Fuxi stack and
// returns the measured overhead factor (makespan / ideal). Fuxi pays the
// worker start cost once per container and reuses it across waves.
func MeasureFuxi(cfg OverheadConfig) (float64, error) {
	racks := (cfg.Nodes + 9) / 10
	perRack := (cfg.Nodes + racks - 1) / racks
	c, err := core.NewCluster(core.Config{
		Racks: racks, MachinesPerRack: perRack, Seed: cfg.Seed,
		Agent: agent.Config{
			HeartbeatInterval: sim.Second,
			WorkerStartDelay:  sim.Time(cfg.WorkerStartDelayMS) * sim.Millisecond,
		},
	})
	if err != nil {
		return 0, err
	}
	n := cfg.instances()
	workers := cfg.Nodes * cfg.WorkersPerNode
	desc := &job.Description{
		Name: "graysort",
		Tasks: map[string]job.TaskSpec{
			"map": {Instances: n, CPUMilli: 1000, MemoryMB: 4096,
				DurationMS: cfg.TaskDurationMS, MaxWorkers: workers},
			"reduce": {Instances: n, CPUMilli: 1000, MemoryMB: 4096,
				DurationMS: cfg.TaskDurationMS, MaxWorkers: workers},
		},
		Pipes: []job.Pipe{{
			Source:      job.AccessPoint{AccessPoint: "map:out"},
			Destination: job.AccessPoint{AccessPoint: "reduce:in"},
		}},
	}
	h, err := c.SubmitJob(desc, core.JobOptions{Config: job.Config{
		Backup: job.BackupConfig{Enabled: true},
	}})
	if err != nil {
		return 0, err
	}
	limit := sim.Time(float64(cfg.IdealSec())*20+600) * sim.Second
	for !h.Done() && c.Now() < limit {
		c.Run(sim.Second)
	}
	if !h.Done() {
		return 0, fmt.Errorf("graysort: fuxi run incomplete after %v", limit)
	}
	return h.ElapsedSeconds() / cfg.IdealSec(), nil
}

// MeasureBaseline runs the same shape through the YARN-style baseline: map
// then reduce as two sequential applications, each paying the per-instance
// container-reallocation and process-start cost.
func MeasureBaseline(cfg OverheadConfig) (float64, error) {
	racks := (cfg.Nodes + 9) / 10
	perRack := (cfg.Nodes + racks - 1) / racks
	top, err := topology.Build(topology.Spec{
		Racks: racks, MachinesPerRack: perRack,
		MachineCapacity: topology.PaperTestbedMachine(),
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, phase := range []string{"map", "reduce"} {
		res, err := baseline.RunWorkload(top, baseline.AMConfig{
			App:           "sort-" + phase,
			Size:          resource.New(1000, 4096),
			Instances:     cfg.instances(),
			Duration:      sim.Time(cfg.TaskDurationMS) * sim.Millisecond,
			MaxContainers: cfg.Nodes * cfg.WorkersPerNode,
			Heartbeat:     sim.Second,
			StartDelay:    sim.Time(cfg.WorkerStartDelayMS) * sim.Millisecond,
		}, cfg.Seed+int64(len(phase)))
		if err != nil {
			return 0, err
		}
		total += res.MakespanSec
	}
	return total / cfg.IdealSec(), nil
}
