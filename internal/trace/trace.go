// Package trace generates synthetic workloads shaped like the paper's
// production tracelog (Table 1) and the synthetic-workload experiment of
// §5.2: an even mix of WordCount and Terasort jobs with (map, reduce)
// parallelism drawn from {(10,10), (100,10), (100,100), (1k,100), (1k,1k),
// (10k,5k)}, execution times between 10 s and 10 min, and 0.5 core + 2 GB
// per instance.
package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/job"
)

// PaperMixes are the (map, reduce) instance counts of §5.2.1, evenly
// distributed across the 1,000 concurrent jobs.
var PaperMixes = [][2]int{
	{10, 10}, {100, 10}, {100, 100}, {1000, 100}, {1000, 1000}, {10000, 5000},
}

// SyntheticConfig tunes the §5.2 workload generator.
type SyntheticConfig struct {
	// Scale divides the paper's instance counts so the experiment fits a
	// smaller simulated cluster; 1 reproduces them verbatim.
	Scale int
	// MinDurationMS..MaxDurationMS is the per-instance execution range
	// (paper: 10 s to 10 min average per job).
	MinDurationMS int64
	MaxDurationMS int64
	// CPUMilli/MemoryMB per instance (paper: 0.5 core, 2 GB).
	CPUMilli int64
	MemoryMB int64
	// MemoryMBAlt sizes the alternate (Terasort) kind. Sorting is
	// memory-hungry; the paper's workloads are "memory-intensive with
	// slight CPU stress", and both dimensions can only approach the
	// reported 95%/91% planned utilization when the average instance is
	// memory-heavier than 2 GB per half-core (see EXPERIMENTS.md).
	MemoryMBAlt int64
	// MaxWorkersPerTask caps container counts per task so one giant job
	// cannot monopolize a scaled-down cluster; 0 = uncapped.
	MaxWorkersPerTask int
}

// DefaultSyntheticConfig mirrors §5.2.1 at a given down-scale factor.
func DefaultSyntheticConfig(scale int) SyntheticConfig {
	if scale < 1 {
		scale = 1
	}
	return SyntheticConfig{
		Scale:         scale,
		MinDurationMS: 10_000,
		MaxDurationMS: 600_000,
		CPUMilli:      500,
		MemoryMB:      2048,
		MemoryMBAlt:   4608,
	}
}

// Job builds the i-th synthetic job. WordCount and Terasort alternate; both
// are two-stage map/reduce DAGs (their difference in the paper is the user
// binary, which the simulation abstracts into the duration).
func (c SyntheticConfig) Job(rng *rand.Rand, i int) *job.Description {
	mix := PaperMixes[i%len(PaperMixes)]
	maps := mix[0] / c.Scale
	reduces := mix[1] / c.Scale
	if maps < 1 {
		maps = 1
	}
	if reduces < 1 {
		reduces = 1
	}
	dur := c.MinDurationMS
	if c.MaxDurationMS > c.MinDurationMS {
		dur += rng.Int63n(c.MaxDurationMS - c.MinDurationMS)
	}
	kind := "wordcount"
	mem := c.MemoryMB
	if i%2 == 1 {
		kind = "terasort"
		if c.MemoryMBAlt > 0 {
			mem = c.MemoryMBAlt
		}
	}
	name := fmt.Sprintf("%s-%05d", kind, i)
	return &job.Description{
		Name: name,
		Tasks: map[string]job.TaskSpec{
			"map": {
				Instances: maps, CPUMilli: c.CPUMilli, MemoryMB: mem,
				DurationMS: dur, MaxWorkers: c.MaxWorkersPerTask,
			},
			"reduce": {
				Instances: reduces, CPUMilli: c.CPUMilli, MemoryMB: mem,
				DurationMS: dur, MaxWorkers: c.MaxWorkersPerTask,
			},
		},
		Pipes: []job.Pipe{
			{Source: job.AccessPoint{AccessPoint: "map:out"},
				Destination: job.AccessPoint{AccessPoint: "reduce:in"}},
		},
	}
}

// Stats summarizes a generated trace the way Table 1 reports the production
// tracelog: average and maximum instances and workers per task, tasks per
// job, and grand totals.
type Stats struct {
	Jobs           int
	Tasks          int
	Instances      int64
	Workers        int64
	AvgInstances   float64 // per task
	MaxInstances   int
	AvgWorkers     float64 // per task
	MaxWorkers     int
	AvgTasksPerJob float64
	MaxTasksPerJob int
}

// Collect computes Stats over job descriptions. Worker counts are the
// containers a task would use: min(MaxWorkers, Instances) when capped, the
// instance count otherwise (matching how the Fuxi framework sizes tasks).
func Collect(jobs []*job.Description) Stats {
	var s Stats
	s.Jobs = len(jobs)
	for _, d := range jobs {
		if len(d.Tasks) > s.MaxTasksPerJob {
			s.MaxTasksPerJob = len(d.Tasks)
		}
		s.Tasks += len(d.Tasks)
		for _, t := range d.Tasks {
			s.Instances += int64(t.Instances)
			w := t.MaxWorkers
			if w <= 0 || w > t.Instances {
				w = t.Instances
			}
			s.Workers += int64(w)
			if t.Instances > s.MaxInstances {
				s.MaxInstances = t.Instances
			}
			if w > s.MaxWorkers {
				s.MaxWorkers = w
			}
		}
	}
	if s.Tasks > 0 {
		s.AvgInstances = float64(s.Instances) / float64(s.Tasks)
		s.AvgWorkers = float64(s.Workers) / float64(s.Tasks)
	}
	if s.Jobs > 0 {
		s.AvgTasksPerJob = float64(s.Tasks) / float64(s.Jobs)
	}
	return s
}

// ProductionConfig shapes a Table 1-like trace: many small jobs, a heavy
// tail of large ones, occasional very wide DAGs.
type ProductionConfig struct {
	Jobs int
	// MaxTasksPerJob bounds DAG width (paper: up to 150 tasks/job).
	MaxTasksPerJob int
	// MaxInstancesPerTask bounds task width (paper: up to ~100k).
	MaxInstancesPerTask int
}

// DefaultProductionConfig mirrors Table 1 at 1/100 scale by default.
func DefaultProductionConfig() ProductionConfig {
	return ProductionConfig{Jobs: 920, MaxTasksPerJob: 150, MaxInstancesPerTask: 99_937}
}

// prodDuration is the per-task execution-time distribution: bounded Pareto
// over the documented 10 s – 10 min range. α = 1.1 puts the median near
// 19 s and the mean near 37 s with a genuine polynomial tail to 10 min —
// the "heavy-tailed" shape the package doc promises (the old code drew
// uniformly from 10–70 s, so no task could ever run longer than 70 s).
var prodDuration = BoundedPareto{Alpha: 1.1, Min: 10_000, Max: 600_000}

const (
	// prodWideDAGProb is the probability a job is a very wide DAG, drawn
	// uniformly from [MaxTasksPerJob/3, MaxTasksPerJob]. Under a pure
	// geometric with p = 0.5 a 150-task job has probability 2^-149 —
	// "occasional very wide DAGs" were unreachable in practice.
	prodWideDAGProb = 0.004
	// prodGeomCont is the geometric bulk's continuation probability,
	// mean 1/(1−q) ≈ 1.606, chosen so the blend stays at Table 1's 2.0
	// tasks/job: 0.996·1.606 + 0.004·(2/3·150) ≈ 2.0.
	prodGeomCont = 0.3775
)

// Generate draws a production-shaped trace: tasks per job mix a geometric
// bulk with a small uniform wide-DAG tail (blended mean 2.0, Table 1's avg
// tasks/job, with the paper's 150-task width actually reachable), durations
// are bounded-Pareto over 10 s – 10 min, and instances per task follow a
// heavy-tailed mixture with mean ~228 (Table 1: avg 228 instances/task).
func (c ProductionConfig) Generate(rng *rand.Rand) []*job.Description {
	jobs := make([]*job.Description, 0, c.Jobs)
	for i := 0; i < c.Jobs; i++ {
		nTasks := 1
		if c.MaxTasksPerJob >= 3 && rng.Float64() < prodWideDAGProb {
			lo := c.MaxTasksPerJob / 3
			nTasks = lo + rng.Intn(c.MaxTasksPerJob-lo+1)
		} else {
			for nTasks < c.MaxTasksPerJob && rng.Float64() < prodGeomCont {
				nTasks++
			}
		}
		d := &job.Description{
			Name:  fmt.Sprintf("prod-%06d", i),
			Tasks: make(map[string]job.TaskSpec, nTasks),
		}
		prev := ""
		for t := 0; t < nTasks; t++ {
			name := fmt.Sprintf("T%d", t+1)
			d.Tasks[name] = job.TaskSpec{
				Instances: c.sampleInstances(rng),
				CPUMilli:  500, MemoryMB: 2048,
				DurationMS: int64(prodDuration.Sample(rng)),
				MaxWorkers: c.sampleWorkerCap(rng),
			}
			if prev != "" {
				// Chain tasks so the DAG is connected.
				d.Pipes = append(d.Pipes, job.Pipe{
					Source:      job.AccessPoint{AccessPoint: prev + ":out"},
					Destination: job.AccessPoint{AccessPoint: name + ":in"},
				})
			}
			prev = name
		}
		jobs = append(jobs, d)
	}
	return jobs
}

// sampleInstances draws a heavy-tailed instance count: 80% small (uniform
// 1–60, mean 30.5), 19% medium (uniform 100–939, mean 519.5), 1% huge
// (bounded Pareto α=0.75 over [2000, MaxInstancesPerTask], mean ≈ 10.5k at
// the default ~100k cap). Blended mean 0.80·30.5 + 0.19·519.5 + 0.01·10.5k
// ≈ 228, the Table 1 average (the old mixture's actual mean was ≈ 357
// despite claiming 228), with the tail reaching the Table 1 ~100k max.
func (c ProductionConfig) sampleInstances(rng *rand.Rand) int {
	var n int
	switch r := rng.Float64(); {
	case r < 0.80:
		n = 1 + rng.Intn(60)
	case r < 0.99:
		n = 100 + rng.Intn(840)
	default:
		huge := BoundedPareto{Alpha: 0.75, Min: 2000, Max: float64(c.MaxInstancesPerTask)}
		n = int(huge.Sample(rng))
	}
	if n > c.MaxInstancesPerTask {
		n = c.MaxInstancesPerTask
	}
	if n < 1 {
		n = 1
	}
	return n
}

// sampleWorkerCap draws the Table 1 worker-per-task shape (avg ~88, max
// ~4.6k): roughly 0.4x the instance mean.
func (c ProductionConfig) sampleWorkerCap(rng *rand.Rand) int {
	if rng.Float64() < 0.5 {
		return 0 // uncapped: workers = instances for small tasks
	}
	return 10 + rng.Intn(150)
}
