package trace

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/job"
)

func TestSyntheticMixCycle(t *testing.T) {
	cfg := DefaultSyntheticConfig(1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < len(PaperMixes); i++ {
		d := cfg.Job(rng, i)
		if err := d.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if d.Tasks["map"].Instances != PaperMixes[i][0] {
			t.Errorf("job %d maps = %d, want %d", i, d.Tasks["map"].Instances, PaperMixes[i][0])
		}
		if d.Tasks["reduce"].Instances != PaperMixes[i][1] {
			t.Errorf("job %d reduces = %d, want %d", i, d.Tasks["reduce"].Instances, PaperMixes[i][1])
		}
	}
}

func TestSyntheticScaling(t *testing.T) {
	cfg := DefaultSyntheticConfig(10)
	rng := rand.New(rand.NewSource(2))
	d := cfg.Job(rng, 0) // (10,10) mix scaled by 10 -> (1,1)
	if d.Tasks["map"].Instances != 1 || d.Tasks["reduce"].Instances != 1 {
		t.Errorf("scaled instances = %d/%d", d.Tasks["map"].Instances, d.Tasks["reduce"].Instances)
	}
	d5 := cfg.Job(rng, 5) // (10k,5k)/10 -> (1000,500)
	if d5.Tasks["map"].Instances != 1000 || d5.Tasks["reduce"].Instances != 500 {
		t.Errorf("scaled big job = %d/%d", d5.Tasks["map"].Instances, d5.Tasks["reduce"].Instances)
	}
}

func TestSyntheticDurationsInRange(t *testing.T) {
	cfg := DefaultSyntheticConfig(1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		d := cfg.Job(rng, i)
		dur := d.Tasks["map"].DurationMS
		if dur < cfg.MinDurationMS || dur >= cfg.MaxDurationMS {
			t.Fatalf("duration %d out of [%d,%d)", dur, cfg.MinDurationMS, cfg.MaxDurationMS)
		}
	}
}

func TestSyntheticAlternatesKinds(t *testing.T) {
	cfg := DefaultSyntheticConfig(1)
	rng := rand.New(rand.NewSource(4))
	a, b := cfg.Job(rng, 0), cfg.Job(rng, 1)
	if a.Name[:9] != "wordcount" {
		t.Errorf("job 0 = %s", a.Name)
	}
	if b.Name[:8] != "terasort" {
		t.Errorf("job 1 = %s", b.Name)
	}
}

func TestCollectStats(t *testing.T) {
	cfg := DefaultSyntheticConfig(1)
	rng := rand.New(rand.NewSource(5))
	var jobs []*job.Description
	for i := 0; i < len(PaperMixes); i++ {
		jobs = append(jobs, cfg.Job(rng, i))
	}
	s := Collect(jobs)
	if s.Jobs != 6 || s.Tasks != 12 {
		t.Fatalf("jobs=%d tasks=%d", s.Jobs, s.Tasks)
	}
	// Total instances = sum of all mixes.
	var want int64
	for _, m := range PaperMixes {
		want += int64(m[0] + m[1])
	}
	if s.Instances != want {
		t.Errorf("instances = %d, want %d", s.Instances, want)
	}
	if s.MaxInstances != 10000 {
		t.Errorf("max instances = %d", s.MaxInstances)
	}
	if s.AvgTasksPerJob != 2.0 {
		t.Errorf("avg tasks/job = %v", s.AvgTasksPerJob)
	}
	// Uncapped workers equal instances.
	if s.Workers != s.Instances {
		t.Errorf("workers = %d, want %d", s.Workers, s.Instances)
	}
}

func TestCollectWorkerCaps(t *testing.T) {
	d := &job.Description{
		Name: "capped",
		Tasks: map[string]job.TaskSpec{
			"T1": {Instances: 100, CPUMilli: 1, MemoryMB: 1, DurationMS: 1, MaxWorkers: 10},
		},
	}
	s := Collect([]*job.Description{d})
	if s.Workers != 10 {
		t.Errorf("workers = %d, want capped 10", s.Workers)
	}
	if s.MaxWorkers != 10 {
		t.Errorf("max workers = %d", s.MaxWorkers)
	}
}

func TestProductionShapeMatchesTable1(t *testing.T) {
	// Table 1: avg 228 instances/task, avg 2.0 tasks/job. Check the
	// generator lands in the right ballpark (heavy-tailed, so allow slack).
	cfg := DefaultProductionConfig()
	cfg.Jobs = 2000
	jobs := cfg.Generate(rand.New(rand.NewSource(6)))
	for _, d := range jobs {
		if err := d.Validate(); err != nil {
			t.Fatalf("invalid production job %s: %v", d.Name, err)
		}
	}
	s := Collect(jobs)
	if s.AvgTasksPerJob < 1.5 || s.AvgTasksPerJob > 2.6 {
		t.Errorf("avg tasks/job = %.2f, want ~2.0", s.AvgTasksPerJob)
	}
	if s.AvgInstances < 170 || s.AvgInstances > 290 {
		t.Errorf("avg instances/task = %.1f, want ~228", s.AvgInstances)
	}
	if s.AvgWorkers >= s.AvgInstances {
		t.Errorf("avg workers %.1f should be below avg instances %.1f", s.AvgWorkers, s.AvgInstances)
	}
	if s.MaxInstances > cfg.MaxInstancesPerTask {
		t.Errorf("max instances %d exceeds cap", s.MaxInstances)
	}
}

// Regression: the old generator drew durations uniformly from 10–70 s,
// contradicting the package doc's "10 s to 10 min" heavy-tailed range — no
// task could ever exceed 70 s. The bounded-Pareto fix must produce tasks
// beyond 70 s, stay inside [10 s, 10 min], and be right-skewed (mean well
// above median).
func TestProductionDurationsHeavyTailed(t *testing.T) {
	cfg := DefaultProductionConfig()
	cfg.Jobs = 2000
	jobs := cfg.Generate(rand.New(rand.NewSource(8)))
	var durs []float64
	over70s := 0
	for _, d := range jobs {
		for _, spec := range d.Tasks {
			if spec.DurationMS < 10_000 || spec.DurationMS > 600_000 {
				t.Fatalf("duration %d ms outside documented [10s, 10min]", spec.DurationMS)
			}
			if spec.DurationMS > 70_000 {
				over70s++
			}
			durs = append(durs, float64(spec.DurationMS))
		}
	}
	if over70s == 0 {
		t.Fatalf("no task duration above 70 s in %d tasks: tail missing (old uniform 10–70 s bug)", len(durs))
	}
	sort.Float64s(durs)
	median := durs[len(durs)/2]
	var mean float64
	for _, v := range durs {
		mean += v
	}
	mean /= float64(len(durs))
	if mean < 1.2*median {
		t.Errorf("mean %.0f ms vs median %.0f ms: distribution not right-skewed", mean, median)
	}
}

// Regression: the old generator's "occasional very wide DAGs" were
// unreachable — geometric p=0.5 makes a 150-task job 2^-149 rare. The
// wide-DAG mixture must actually produce jobs at MaxTasksPerJob/3 or wider.
func TestProductionWideDAGsReachable(t *testing.T) {
	cfg := DefaultProductionConfig()
	cfg.Jobs = 2000
	jobs := cfg.Generate(rand.New(rand.NewSource(9)))
	wide := 0
	for _, d := range jobs {
		if len(d.Tasks) >= cfg.MaxTasksPerJob/3 {
			wide++
		}
		if len(d.Tasks) > cfg.MaxTasksPerJob {
			t.Fatalf("job %s has %d tasks, above the %d cap", d.Name, len(d.Tasks), cfg.MaxTasksPerJob)
		}
	}
	if wide == 0 {
		t.Fatalf("no very wide DAG (≥ %d tasks) in %d jobs", cfg.MaxTasksPerJob/3, len(jobs))
	}
}

func TestProductionDeterministic(t *testing.T) {
	cfg := DefaultProductionConfig()
	cfg.Jobs = 50
	a := cfg.Generate(rand.New(rand.NewSource(7)))
	b := cfg.Generate(rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Tasks) != len(b[i].Tasks) {
			t.Fatalf("generation not deterministic at job %d", i)
		}
	}
}
