package trace

// Replay-shape primitives: the distributions the trace-driven replay mode
// (internal/scale, `scalesim -replay`) synthesizes its workload from —
// Alibaba-cluster-trace-style diurnal arrival cycles, Pareto-ish
// heavy-tailed job widths and durations, and correlated per-tenant burst
// sessions. Every sampler is pure over an explicit *rand.Rand (or a hash
// unit via Quantile), so replay traces are seed-deterministic and
// independent of scheduling timing. EXPERIMENTS.md documents the parameter
// choices the replay harness feeds these.

import (
	"math"
	"math/rand"

	"repro/internal/sim"
)

// BoundedPareto is a Pareto(Alpha) distribution truncated to [Min, Max]:
// most mass near Min, a polynomial tail that actually reaches Max. Alpha
// near 1 makes the tail heavy (Table 1's instance counts, the 10 s–10 min
// duration range); larger Alpha concentrates near Min.
type BoundedPareto struct {
	Alpha    float64
	Min, Max float64
}

// Quantile maps u ∈ [0, 1) through the inverse CDF — the hash-driven entry
// point: a job whose shape comes from a uniform hash unit gets the same
// heavy-tailed draw as one sampled from an rng, without consuming shared
// random state (so registration timing cannot perturb other streams).
func (p BoundedPareto) Quantile(u float64) float64 {
	if p.Max <= p.Min || p.Alpha == 0 {
		return p.Min
	}
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	r := p.Min / p.Max
	x := p.Min * math.Pow(1-u*(1-math.Pow(r, p.Alpha)), -1/p.Alpha)
	if x > p.Max {
		x = p.Max
	}
	return x
}

// Sample draws one value from rng.
func (p BoundedPareto) Sample(rng *rand.Rand) float64 { return p.Quantile(rng.Float64()) }

// Mean returns the analytic mean (Alpha ≠ 1; the truncation makes it finite
// for every Alpha > 0).
func (p BoundedPareto) Mean() float64 {
	if p.Max <= p.Min {
		return p.Min
	}
	if p.Alpha == 1 {
		return p.Min * math.Log(p.Max/p.Min) / (1 - p.Min/p.Max)
	}
	r := math.Pow(p.Min/p.Max, p.Alpha)
	return p.Min / (1 - r) * p.Alpha / (p.Alpha - 1) *
		(1 - math.Pow(p.Min/p.Max, p.Alpha-1))
}

// DiurnalRate modulates a base arrival rate sinusoidally over a simulated
// day — the diurnal cycle of a production trace compressed to Day of
// virtual time. Rate(t) = Base × (1 + A·sin(2πt/Day)): the peak lands at
// Day/4, the trough at 3·Day/4, and the time-average over a whole day is
// exactly Base.
type DiurnalRate struct {
	BaseRatePerSec float64
	// AmplitudePct ∈ [0, 100) is the peak's excess over the base in percent
	// (100 would pinch the trough to zero).
	AmplitudePct float64
	Day          sim.Time
}

// At returns the instantaneous rate (events per virtual second) at t.
func (d DiurnalRate) At(t sim.Time) float64 {
	if d.Day <= 0 {
		return d.BaseRatePerSec
	}
	frac := float64(t%d.Day) / float64(d.Day)
	return d.BaseRatePerSec * (1 + d.AmplitudePct/100*math.Sin(2*math.Pi*frac))
}

// Peak returns the maximum instantaneous rate.
func (d DiurnalRate) Peak() float64 { return d.BaseRatePerSec * (1 + d.AmplitudePct/100) }

// NextArrival returns the next arrival instant strictly after now, by
// thinning a homogeneous Poisson process at the peak rate (Lewis–Shedler):
// exact for any bounded rate function and deterministic given the rng.
func (d DiurnalRate) NextArrival(rng *rand.Rand, now sim.Time) sim.Time {
	peak := d.Peak()
	if peak <= 0 {
		return sim.Time(math.MaxInt64 / 2)
	}
	t := now
	for {
		step := sim.Time(rng.ExpFloat64() / peak * float64(sim.Second))
		if step < 1 {
			step = 1 // keep strictly monotonic at µs resolution
		}
		t += step
		if rng.Float64()*peak <= d.At(t) {
			return t
		}
	}
}

// BurstSessions shapes the correlated per-tenant submission bursts of a
// production trace: a session arrival (rate-modulated by DiurnalRate) picks
// one tenant, which then submits a geometric burst of jobs in quick
// succession — the within-tenant correlation a memoryless per-submission
// tenant draw cannot produce.
type BurstSessions struct {
	// MeanJobs is the geometric mean session size in jobs (≥ 1).
	MeanJobs float64
	// MeanGap is the mean exponential spacing between a session's jobs.
	MeanGap sim.Time
}

// SampleSize draws the session's job count: geometric on {1, 2, ...} with
// mean MeanJobs.
func (b BurstSessions) SampleSize(rng *rand.Rand) int {
	if b.MeanJobs <= 1 {
		return 1
	}
	cont := 1 - 1/b.MeanJobs
	n := 1
	for n < 10_000 && rng.Float64() < cont {
		n++
	}
	return n
}

// SampleGap draws the spacing to the session's next submission (≥ 1 µs so
// intra-session order is well defined).
func (b BurstSessions) SampleGap(rng *rand.Rand) sim.Time {
	if b.MeanGap <= 0 {
		return sim.Millisecond
	}
	g := sim.Time(rng.ExpFloat64() * float64(b.MeanGap))
	if g < 1 {
		g = 1
	}
	return g
}
