package trace

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestBoundedParetoQuantile(t *testing.T) {
	p := BoundedPareto{Alpha: 1.1, Min: 10, Max: 600}
	if got := p.Quantile(0); got != p.Min {
		t.Errorf("Quantile(0) = %v, want Min %v", got, p.Min)
	}
	if got := p.Quantile(1); got < p.Max*0.999 || got > p.Max {
		t.Errorf("Quantile(1) = %v, want ≈ Max %v", got, p.Max)
	}
	prev := 0.0
	for u := 0.0; u < 1; u += 0.01 {
		x := p.Quantile(u)
		if x < p.Min || x > p.Max {
			t.Fatalf("Quantile(%v) = %v outside [Min, Max]", u, x)
		}
		if x < prev {
			t.Fatalf("Quantile not monotonic at u=%v: %v < %v", u, x, prev)
		}
		prev = x
	}
	// Degenerate range collapses to Min.
	d := BoundedPareto{Alpha: 2, Min: 5, Max: 5}
	if got := d.Quantile(0.7); got != 5 {
		t.Errorf("degenerate Quantile = %v, want 5", got)
	}
}

func TestBoundedParetoSampleMeanMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range []BoundedPareto{
		{Alpha: 1.1, Min: 10_000, Max: 600_000},
		{Alpha: 0.75, Min: 2000, Max: 99_937},
		{Alpha: 2.5, Min: 1, Max: 96},
	} {
		var sum float64
		const n = 200_000
		for i := 0; i < n; i++ {
			sum += p.Sample(rng)
		}
		got := sum / n
		want := p.Mean()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("α=%v: sample mean %.1f vs analytic %.1f", p.Alpha, got, want)
		}
	}
}

func TestDiurnalRateShape(t *testing.T) {
	d := DiurnalRate{BaseRatePerSec: 100, AmplitudePct: 60, Day: 24 * sim.Minute}
	peak := d.At(d.Day / 4)
	trough := d.At(3 * d.Day / 4)
	if math.Abs(peak-160) > 1e-6 {
		t.Errorf("peak rate = %v, want 160", peak)
	}
	if math.Abs(trough-40) > 1e-6 {
		t.Errorf("trough rate = %v, want 40", trough)
	}
	if d.Peak() != 160 {
		t.Errorf("Peak() = %v, want 160", d.Peak())
	}
	// Rate is periodic over Day.
	if math.Abs(d.At(d.Day/8)-d.At(d.Day+d.Day/8)) > 1e-9 {
		t.Error("rate not periodic over Day")
	}
	// Flat when Day unset.
	flat := DiurnalRate{BaseRatePerSec: 7}
	if flat.At(12345) != 7 {
		t.Errorf("flat rate = %v", flat.At(12345))
	}
}

func TestDiurnalNextArrivalThinning(t *testing.T) {
	d := DiurnalRate{BaseRatePerSec: 200, AmplitudePct: 60, Day: 60 * sim.Second}
	rng := rand.New(rand.NewSource(12))
	// Count arrivals in the peak quarter vs the trough quarter over many
	// days: the ratio should approach (1+A)/(1−A) = 4.
	var peakN, troughN int
	t0 := sim.Time(0)
	for t0 < 200*d.Day {
		t1 := d.NextArrival(rng, t0)
		if t1 <= t0 {
			t.Fatalf("NextArrival not strictly increasing: %d -> %d", t0, t1)
		}
		phase := t1 % d.Day
		switch {
		case phase >= d.Day/8 && phase < 3*d.Day/8: // centered on Day/4
			peakN++
		case phase >= 5*d.Day/8 && phase < 7*d.Day/8: // centered on 3Day/4
			troughN++
		}
		t0 = t1
	}
	ratio := float64(peakN) / float64(troughN)
	if ratio < 2.5 || ratio > 5.5 {
		t.Errorf("peak/trough arrival ratio = %.2f, want ≈ 4 (diurnal modulation missing?)", ratio)
	}
}

func TestBurstSessionsShape(t *testing.T) {
	b := BurstSessions{MeanJobs: 2.2, MeanGap: 200 * sim.Millisecond}
	rng := rand.New(rand.NewSource(13))
	var jobs int
	const n = 100_000
	for i := 0; i < n; i++ {
		s := b.SampleSize(rng)
		if s < 1 {
			t.Fatalf("session size %d < 1", s)
		}
		jobs += s
	}
	mean := float64(jobs) / n
	if math.Abs(mean-2.2) > 0.1 {
		t.Errorf("mean session size = %.2f, want 2.2", mean)
	}
	var gap sim.Time
	for i := 0; i < n; i++ {
		g := b.SampleGap(rng)
		if g < 1 {
			t.Fatalf("gap %d < 1µs", g)
		}
		gap += g
	}
	if got := float64(gap) / n / float64(sim.Millisecond); got < 180 || got > 220 {
		t.Errorf("mean gap = %.1f ms, want ≈ 200", got)
	}
	// Degenerate configs stay sane.
	one := BurstSessions{MeanJobs: 1}
	if one.SampleSize(rng) != 1 {
		t.Error("MeanJobs=1 must always give size 1")
	}
}
