// Package ident provides string interning for the control plane's hot
// paths: a Table maps names (machines, racks, applications, transport
// endpoints, tenants) to dense integer IDs assigned in registration order,
// so steady-state code indexes slices instead of hashing strings.
//
// The boundary rule the repo follows: names exist at the edges — wire
// serialization, checkpoints, logs, public APIs — and are resolved to IDs
// exactly once, at registration / session-hello time. Everything inside a
// component's hot loop (free pools, wait queues, ledgers, dedup tables)
// is keyed by the dense ID. IDs are NOT stable across processes or
// restarts (they depend on registration order), which is why they never
// appear in durable state; topology-derived machine IDs are the one
// exception — every process derives them from the same sorted machine
// list, so they are safe on the simulated wire.
//
// Determinism: ID assignment depends only on the order of Intern calls,
// never on map iteration, so a seeded run re-interns identically.
package ident

// None is the sentinel returned by ID for unknown names.
const None int32 = -1

// Table is a deterministic string↔dense-ID intern table. The zero value is
// ready to use. Not safe for concurrent mutation; concurrent read-only use
// (Name, ID, Len) is safe once no more Intern calls happen.
type Table struct {
	ids   map[string]int32
	names []string
}

// Intern returns the ID for name, assigning the next dense ID (starting at
// 0, in call order) on first sight.
func (t *Table) Intern(name string) int32 {
	if id, ok := t.ids[name]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]int32)
	}
	id := int32(len(t.names))
	t.ids[name] = id
	t.names = append(t.names, name)
	return id
}

// ID returns the ID for name, or None if it was never interned.
func (t *Table) ID(name string) int32 {
	if id, ok := t.ids[name]; ok {
		return id
	}
	return None
}

// Name returns the name for id. It panics on out-of-range IDs, exactly like
// a slice index — an invalid ID is a programming error, not input.
func (t *Table) Name(id int32) string { return t.names[id] }

// Len returns the number of interned names; valid IDs are [0, Len).
func (t *Table) Len() int { return len(t.names) }

// Names returns the interned names in ID order. The caller must not modify
// the returned slice.
func (t *Table) Names() []string { return t.names }
