package ident

import "testing"

func TestTableDenseRegistrationOrder(t *testing.T) {
	var tb Table
	names := []string{"r000m000", "r000m001", "app-1", "r000m000", "agent:x"}
	want := []int32{0, 1, 2, 0, 3}
	for i, n := range names {
		if id := tb.Intern(n); id != want[i] {
			t.Fatalf("Intern(%q) = %d, want %d", n, id, want[i])
		}
	}
	if tb.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tb.Len())
	}
	if got := tb.ID("app-1"); got != 2 {
		t.Fatalf("ID(app-1) = %d, want 2", got)
	}
	if got := tb.ID("missing"); got != None {
		t.Fatalf("ID(missing) = %d, want None", got)
	}
	if got := tb.Name(3); got != "agent:x" {
		t.Fatalf("Name(3) = %q", got)
	}
	if got := tb.Names(); len(got) != 4 || got[0] != "r000m000" {
		t.Fatalf("Names() = %v", got)
	}
}

func TestTableZeroValue(t *testing.T) {
	var tb Table
	if tb.Len() != 0 || tb.ID("x") != None {
		t.Fatal("zero table not empty")
	}
	if id := tb.Intern("x"); id != 0 {
		t.Fatalf("first Intern = %d", id)
	}
}
