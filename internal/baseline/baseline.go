// Package baseline implements a YARN-1.x-style resource manager and
// application master, the comparator the paper positions Fuxi against
// (§3.2.3, §6). Its two deliberate differences from Fuxi isolate what the
// evaluation credits for Fuxi's win:
//
//  1. No container reuse: "whenever a task completes, the node manager
//     always reclaims back the resources, even though the application
//     master has more ready tasks" — every instance costs a fresh
//     allocation round plus a fresh process start.
//  2. Heartbeat-driven full-demand requests: the AM re-asserts its whole
//     outstanding demand every heartbeat instead of sending one
//     incremental delta, and unsatisfied demand is not queued in a
//     locality tree — the RM re-scans on every heartbeat.
//
// The package runs on the same simulation substrate as the real Fuxi stack
// so message counts, scheduling work and makespans are directly comparable.
package baseline

import (
	"fmt"

	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// RMEndpoint is the baseline resource manager's transport endpoint.
const RMEndpoint = "baseline-rm"

// fullRequest is the AM's heartbeat message: the complete outstanding
// demand, every time.
type fullRequest struct {
	App         string
	Size        resource.Vector
	Outstanding int
}

// WireSize implements transport.Sizer: a full request carries the whole
// demand table.
func (r fullRequest) WireSize() int { return 24 + len(r.App) + 48 }

// allocation grants one container.
type allocation struct {
	App     string
	Machine string
}

func (allocation) WireSize() int { return 48 }

// release returns one container (sent per task completion).
type release struct {
	App     string
	Machine string
}

func (release) WireSize() int { return 48 }

// RM is the YARN-style resource manager: stateless between heartbeats with
// respect to pending demand — each heartbeat's request is matched against
// the pool by a fresh scan.
type RM struct {
	eng  *sim.Engine
	net  *transport.Net
	top  *topology.Topology
	free map[string]resource.Vector
	// Decisions counts allocation scans, the RM's scheduling work.
	Decisions int
	cursor    int
}

// NewRM boots the resource manager.
func NewRM(eng *sim.Engine, net *transport.Net, top *topology.Topology) *RM {
	rm := &RM{eng: eng, net: net, top: top, free: make(map[string]resource.Vector, top.Size())}
	for _, m := range top.Machines() {
		rm.free[m] = top.Machine(m).Capacity
	}
	net.Register(RMEndpoint, rm.handle)
	return rm
}

func (rm *RM) handle(from transport.EndpointID, msg transport.Message) {
	switch t := msg.(type) {
	case fullRequest:
		rm.allocate(t)
	case release:
		rm.free[t.Machine] = rm.free[t.Machine].Add(appSizes[t.App])
	}
}

// appSizes lets release messages restore the right vector without carrying
// it; keyed by app (single container size per baseline app).
var appSizes = map[string]resource.Vector{}

// allocate scans the machine list for each outstanding container — the
// linear resource model the paper attributes to Hadoop/YARN lineage.
func (rm *RM) allocate(req fullRequest) {
	machines := rm.top.Machines()
	n := len(machines)
	granted := 0
	for i := 0; i < n && granted < req.Outstanding; i++ {
		m := machines[(rm.cursor+i)%n]
		rm.Decisions++
		for granted < req.Outstanding && rm.free[m].Contains(req.Size) {
			rm.free[m] = rm.free[m].Sub(req.Size)
			rm.net.Send(RMEndpoint, req.App, allocation{App: req.App, Machine: m})
			granted++
			rm.Decisions++
			break // spread: at most one per machine per pass
		}
	}
	if n > 0 {
		rm.cursor = (rm.cursor + 1) % n
	}
}

// HandleForBench drives one full allocation scan directly (no transport),
// for microbenchmarks comparing the RM's per-heartbeat rescan against
// Fuxi's locality-tree regrant.
func (rm *RM) HandleForBench(app string, size resource.Vector, outstanding int) {
	appSizes[app] = size
	rm.allocate(fullRequest{App: app, Size: size, Outstanding: outstanding})
}

// AMConfig describes one baseline application: Instances tasks of Duration
// each, at most MaxContainers concurrent.
type AMConfig struct {
	App           string
	Size          resource.Vector
	Instances     int
	Duration      sim.Time
	MaxContainers int
	// Heartbeat is the request period (YARN AMs poll the RM).
	Heartbeat sim.Time
	// StartDelay models container/process launch cost, paid per task
	// because containers are never reused.
	StartDelay sim.Time
	OnDone     func()
}

// AM is the YARN-style application master.
type AM struct {
	cfg     AMConfig
	eng     *sim.Engine
	net     *transport.Net
	pending int
	running int
	done    int
	stopped bool
	timer   sim.Cancel
}

// NewAM starts a baseline application master.
func NewAM(cfg AMConfig, eng *sim.Engine, net *transport.Net) *AM {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = sim.Second
	}
	if cfg.MaxContainers <= 0 {
		cfg.MaxContainers = cfg.Instances
	}
	a := &AM{cfg: cfg, eng: eng, net: net, pending: cfg.Instances}
	appSizes[cfg.App] = cfg.Size
	net.Register(cfg.App, a.handle)
	a.heartbeat()
	a.timer = eng.Every(cfg.Heartbeat, a.heartbeat)
	return a
}

// heartbeat re-sends the full outstanding demand — the repetitive
// assertion Fuxi's incremental protocol eliminates.
func (a *AM) heartbeat() {
	if a.stopped {
		return
	}
	want := a.pending
	if cap := a.cfg.MaxContainers - a.running; want > cap {
		want = cap
	}
	if want <= 0 {
		return
	}
	a.net.Send(a.cfg.App, RMEndpoint, fullRequest{
		App: a.cfg.App, Size: a.cfg.Size, Outstanding: want,
	})
}

func (a *AM) handle(from transport.EndpointID, msg transport.Message) {
	if a.stopped {
		return
	}
	al, ok := msg.(allocation)
	if !ok {
		return
	}
	if a.pending == 0 || a.running >= a.cfg.MaxContainers {
		// Surplus container (RM allocated from a stale heartbeat): give it
		// straight back.
		a.net.Send(a.cfg.App, RMEndpoint, release{App: a.cfg.App, Machine: al.Machine})
		return
	}
	a.pending--
	a.running++
	// One task per container: start cost + execution, then the container
	// is reclaimed by the RM and the next task needs a fresh round.
	a.eng.After(a.cfg.StartDelay+a.cfg.Duration, func() {
		a.running--
		a.done++
		a.net.Send(a.cfg.App, RMEndpoint, release{App: a.cfg.App, Machine: al.Machine})
		if a.done == a.cfg.Instances {
			a.finish()
			return
		}
		// The next container arrives only after a future heartbeat round
		// reasserts demand — no locality-tree auto-regrant.
	})
}

func (a *AM) finish() {
	if a.stopped {
		return
	}
	a.stopped = true
	if a.timer != nil {
		a.timer()
	}
	a.net.Unregister(a.cfg.App)
	if a.cfg.OnDone != nil {
		a.cfg.OnDone()
	}
}

// Done reports completion.
func (a *AM) Done() bool { return a.stopped }

// Progress returns (done, total).
func (a *AM) Progress() (int, int) { return a.done, a.cfg.Instances }

// Result summarizes a baseline or Fuxi-side comparison run.
type Result struct {
	MakespanSec float64
	Messages    uint64
	Bytes       uint64
	Decisions   int
}

func (r Result) String() string {
	return fmt.Sprintf("makespan=%.1fs messages=%d bytes=%d decisions=%d",
		r.MakespanSec, r.Messages, r.Bytes, r.Decisions)
}

// RunWorkload executes one baseline application to completion on a fresh
// simulated cluster and reports makespan and traffic.
func RunWorkload(top *topology.Topology, cfg AMConfig, seed int64) (Result, error) {
	eng := sim.NewEngine(seed)
	net := transport.NewNet(eng)
	rm := NewRM(eng, net, top)
	var doneAt sim.Time = -1
	cfg.OnDone = func() { doneAt = eng.Now() }
	am := NewAM(cfg, eng, net)
	limit := 10 * sim.Hour
	eng.Run(limit)
	if !am.Done() {
		d, n := am.Progress()
		return Result{}, fmt.Errorf("baseline: workload incomplete (%d/%d) after %v", d, n, limit)
	}
	s := net.Stats()
	return Result{
		MakespanSec: doneAt.Seconds(),
		Messages:    s.Sent,
		Bytes:       s.Bytes,
		Decisions:   rm.Decisions,
	}, nil
}
