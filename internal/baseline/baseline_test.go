package baseline

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

func testTop(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.Build(topology.Spec{
		Racks: 2, MachinesPerRack: 2,
		MachineCapacity: resource.New(12000, 96*1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestWorkloadCompletes(t *testing.T) {
	res, err := RunWorkload(testTop(t), AMConfig{
		App: "b1", Size: resource.New(1000, 2048),
		Instances: 20, Duration: sim.Second, Heartbeat: sim.Second,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSec <= 0 {
		t.Errorf("makespan = %v", res.MakespanSec)
	}
	if res.Messages == 0 || res.Decisions == 0 {
		t.Errorf("no traffic recorded: %+v", res)
	}
}

func TestMaxContainersRespected(t *testing.T) {
	eng := sim.NewEngine(2)
	net := transport.NewNet(eng)
	NewRM(eng, net, testTop(t))
	am := NewAM(AMConfig{
		App: "b2", Size: resource.New(1000, 2048),
		Instances: 10, Duration: 2 * sim.Second, MaxContainers: 2, Heartbeat: sim.Second,
	}, eng, net)
	peak := 0
	for i := 0; i < 200 && !am.Done(); i++ {
		eng.Run(eng.Now() + 100*sim.Millisecond)
		if am.running > peak {
			peak = am.running
		}
	}
	if !am.Done() {
		t.Fatal("workload incomplete")
	}
	if peak > 2 {
		t.Errorf("peak containers = %d, want <= 2", peak)
	}
}

func TestPerTaskReallocationCostsRounds(t *testing.T) {
	// 1 container, N sequential tasks: each task completion forces a full
	// heartbeat round trip before the next starts, so the makespan is at
	// least N * (duration + heartbeat-ish gap), clearly above N * duration.
	const n = 10
	res, err := RunWorkload(testTop(t), AMConfig{
		App: "b3", Size: resource.New(1000, 2048),
		Instances: n, Duration: sim.Second, MaxContainers: 1, Heartbeat: sim.Second,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSec < float64(n)*1.3 {
		t.Errorf("makespan %.1fs too fast: no per-task reallocation penalty visible", res.MakespanSec)
	}
}

func TestFullDemandHeartbeatsKeepFlowing(t *testing.T) {
	// With demand outstanding and a busy cluster, the AM keeps re-sending
	// full requests every heartbeat — the message overhead the incremental
	// protocol removes.
	eng := sim.NewEngine(4)
	net := transport.NewNet(eng)
	top, err := topology.Build(topology.Spec{
		Racks: 1, MachinesPerRack: 1,
		MachineCapacity: resource.New(1000, 2048), // fits exactly 1 container
	})
	if err != nil {
		t.Fatal(err)
	}
	NewRM(eng, net, top)
	NewAM(AMConfig{
		App: "b4", Size: resource.New(1000, 2048),
		Instances: 50, Duration: 30 * sim.Second, Heartbeat: sim.Second,
	}, eng, net)
	eng.Run(20 * sim.Second)
	if sent := net.Stats().Sent; sent < 15 {
		t.Errorf("messages in 20s = %d, want >= 15 (per-heartbeat full requests)", sent)
	}
}

func TestSurplusAllocationReturned(t *testing.T) {
	res, err := RunWorkload(testTop(t), AMConfig{
		App: "b5", Size: resource.New(500, 1024),
		Instances: 3, Duration: 500 * sim.Millisecond, MaxContainers: 3, Heartbeat: 250 * sim.Millisecond,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSec <= 0 {
		t.Error("did not complete")
	}
}
