// Package lockservice provides the lease-based distributed lock that Fuxi's
// hot-standby FuxiMaster pair uses for mutual exclusion (paper §4.3.1: "these
// two masters are mutually excluded by using a distributed lock on the Apsara
// lock service"). Holders must renew within the lease TTL; when the primary
// crashes and stops renewing, the lease expires and the standby's pending
// acquire succeeds, making it the new primary.
package lockservice

import (
	"repro/internal/sim"
)

// Service is a single in-process lock registry driven by the simulation
// engine. It is deliberately modelled as an always-available coordination
// service: the paper assumes Apsara's lock service does not fail.
type Service struct {
	eng   *sim.Engine
	locks map[string]*lock
}

type waiter struct {
	holder string
	fn     func()
	gone   bool
}

type lock struct {
	holder  string
	token   uint64
	expires sim.Time
	ttl     sim.Time
	waiters []*waiter
	expiry  sim.Cancel
}

// New returns an empty lock service.
func New(eng *sim.Engine) *Service {
	return &Service{eng: eng, locks: make(map[string]*lock)}
}

// TryAcquire attempts to grab name for holder with the given TTL. It returns
// true on success. Re-acquiring a lock already held by the same holder
// renews it.
func (s *Service) TryAcquire(name, holder string, ttl sim.Time) bool {
	l := s.locks[name]
	if l == nil {
		l = &lock{}
		s.locks[name] = l
	}
	if l.holder != "" && l.holder != holder {
		return false
	}
	if l.holder != holder {
		// Ownership changed hands: bump the fencing token so writes
		// authorized under the previous ownership are rejectable.
		l.token++
	}
	l.holder = holder
	l.ttl = ttl
	s.armExpiry(name, l)
	return true
}

// Token returns the fencing token of the current ownership of name. The
// token increases every time the lock changes hands, so a holder that was
// partitioned away and lost its lease can never present a current token
// again: downstream state stores should record the token at acquire time and
// reject writes carrying a stale one (see Validate).
func (s *Service) Token(name string) uint64 {
	if l := s.locks[name]; l != nil {
		return l.token
	}
	return 0
}

// Validate reports whether holder still owns name under fencing token token.
// A store guarding writes with Validate rejects a deposed holder's writes
// even after the network heals: its token predates the successor's.
func (s *Service) Validate(name, holder string, token uint64) bool {
	l := s.locks[name]
	return l != nil && l.holder == holder && l.token == token
}

// AcquireOrWait grabs the lock now if free, otherwise queues acquired to be
// invoked when the lock becomes available to this holder (release or lease
// expiry). This is the standby master's "grasp the lock" path. The returned
// cancel removes the waiter.
func (s *Service) AcquireOrWait(name, holder string, ttl sim.Time, acquired func()) sim.Cancel {
	if s.TryAcquire(name, holder, ttl) {
		acquired()
		return func() {}
	}
	l := s.locks[name]
	w := &waiter{holder: holder, fn: func() {
		if s.TryAcquire(name, holder, ttl) {
			acquired()
		}
	}}
	l.waiters = append(l.waiters, w)
	return func() { w.gone = true }
}

// Renew extends holder's lease. It returns false when holder no longer owns
// the lock (e.g. the lease already expired and another holder took over) —
// the signal for a deposed primary to stand down.
func (s *Service) Renew(name, holder string) bool {
	l := s.locks[name]
	if l == nil || l.holder != holder {
		return false
	}
	s.armExpiry(name, l)
	return true
}

// Release frees the lock when held by holder and wakes the next waiter.
func (s *Service) Release(name, holder string) {
	l := s.locks[name]
	if l == nil || l.holder != holder {
		return
	}
	s.free(name, l)
}

// Holder returns the current holder ("" when free).
func (s *Service) Holder(name string) string {
	if l := s.locks[name]; l != nil {
		return l.holder
	}
	return ""
}

func (s *Service) armExpiry(name string, l *lock) {
	if l.expiry != nil {
		l.expiry()
	}
	l.expires = s.eng.Now() + l.ttl
	holder := l.holder
	l.expiry = s.eng.At(l.expires, func() {
		if l.holder == holder && s.eng.Now() >= l.expires {
			s.free(name, l)
		}
	})
}

func (s *Service) free(name string, l *lock) {
	if l.expiry != nil {
		l.expiry()
		l.expiry = nil
	}
	l.holder = ""
	// Wake the first live waiter; it re-runs TryAcquire itself so a
	// cancelled waiter simply falls through to the next.
	for len(l.waiters) > 0 {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		if w.gone {
			continue
		}
		w.fn()
		if l.holder != "" {
			return
		}
	}
}
