package lockservice

import (
	"testing"

	"repro/internal/sim"
)

func TestTryAcquireMutex(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	if !s.TryAcquire("master", "A", 100) {
		t.Fatal("first acquire failed")
	}
	if s.TryAcquire("master", "B", 100) {
		t.Fatal("second holder acquired held lock")
	}
	if s.Holder("master") != "A" {
		t.Errorf("holder = %q", s.Holder("master"))
	}
}

func TestReacquireRenews(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 100)
	eng.Run(50)
	if !s.TryAcquire("l", "A", 100) {
		t.Fatal("self re-acquire failed")
	}
	eng.Run(120) // original lease would have expired at 100
	if s.Holder("l") != "A" {
		t.Error("renewed lease expired early")
	}
	eng.Run(200)
	if s.Holder("l") != "" {
		t.Error("lease did not expire after renewal TTL")
	}
}

func TestLeaseExpiryWakesWaiter(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("master", "primary", 1000)
	became := sim.Time(-1)
	s.AcquireOrWait("master", "standby", 1000, func() { became = eng.Now() })
	// primary "crashes" (never renews); lease expires at t=1000.
	eng.Run(1500)
	if became != 1000 {
		t.Errorf("standby became primary at %v, want 1000", became)
	}
	if s.Holder("master") != "standby" {
		t.Errorf("holder = %q", s.Holder("master"))
	}
	// The standby never renews either, so its own lease lapses at 2000.
	eng.Run(2500)
	if s.Holder("master") != "" {
		t.Errorf("holder after standby lease lapse = %q", s.Holder("master"))
	}
}

func TestRenewKeepsHolderAlive(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 100)
	eng.Every(50, func() { s.Renew("l", "A") })
	eng.Run(1000)
	if s.Holder("l") != "A" {
		t.Errorf("holder after renewals = %q", s.Holder("l"))
	}
}

func TestRenewByNonHolderFails(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 100)
	if s.Renew("l", "B") {
		t.Error("non-holder renew succeeded")
	}
	if s.Renew("unknown", "A") {
		t.Error("renew of unknown lock succeeded")
	}
}

func TestReleaseWakesWaiter(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 10000)
	got := false
	s.AcquireOrWait("l", "B", 10000, func() { got = true })
	s.Release("l", "A")
	if !got {
		t.Error("waiter not woken on release")
	}
	if s.Holder("l") != "B" {
		t.Errorf("holder = %q", s.Holder("l"))
	}
}

func TestReleaseByNonHolderIgnored(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 10000)
	s.Release("l", "B")
	if s.Holder("l") != "A" {
		t.Error("non-holder release took effect")
	}
}

func TestCancelledWaiterSkipped(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 10000)
	gotB, gotC := false, false
	cancelB := s.AcquireOrWait("l", "B", 10000, func() { gotB = true })
	s.AcquireOrWait("l", "C", 10000, func() { gotC = true })
	cancelB()
	s.Release("l", "A")
	if gotB {
		t.Error("cancelled waiter invoked")
	}
	if !gotC {
		t.Error("next waiter not invoked")
	}
}

func TestAcquireOrWaitImmediateWhenFree(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	got := false
	s.AcquireOrWait("l", "A", 100, func() { got = true })
	if !got {
		t.Error("immediate acquire not invoked")
	}
}

func TestExpiryThenReacquireByThirdParty(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 100)
	eng.Run(150)
	if s.Holder("l") != "" {
		t.Fatalf("lock not expired: %q", s.Holder("l"))
	}
	if !s.TryAcquire("l", "C", 100) {
		t.Error("acquire after expiry failed")
	}
}
