package lockservice

import (
	"testing"

	"repro/internal/sim"
)

func TestTryAcquireMutex(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	if !s.TryAcquire("master", "A", 100) {
		t.Fatal("first acquire failed")
	}
	if s.TryAcquire("master", "B", 100) {
		t.Fatal("second holder acquired held lock")
	}
	if s.Holder("master") != "A" {
		t.Errorf("holder = %q", s.Holder("master"))
	}
}

func TestReacquireRenews(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 100)
	eng.Run(50)
	if !s.TryAcquire("l", "A", 100) {
		t.Fatal("self re-acquire failed")
	}
	eng.Run(120) // original lease would have expired at 100
	if s.Holder("l") != "A" {
		t.Error("renewed lease expired early")
	}
	eng.Run(200)
	if s.Holder("l") != "" {
		t.Error("lease did not expire after renewal TTL")
	}
}

func TestLeaseExpiryWakesWaiter(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("master", "primary", 1000)
	became := sim.Time(-1)
	s.AcquireOrWait("master", "standby", 1000, func() { became = eng.Now() })
	// primary "crashes" (never renews); lease expires at t=1000.
	eng.Run(1500)
	if became != 1000 {
		t.Errorf("standby became primary at %v, want 1000", became)
	}
	if s.Holder("master") != "standby" {
		t.Errorf("holder = %q", s.Holder("master"))
	}
	// The standby never renews either, so its own lease lapses at 2000.
	eng.Run(2500)
	if s.Holder("master") != "" {
		t.Errorf("holder after standby lease lapse = %q", s.Holder("master"))
	}
}

func TestRenewKeepsHolderAlive(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 100)
	eng.Every(50, func() { s.Renew("l", "A") })
	eng.Run(1000)
	if s.Holder("l") != "A" {
		t.Errorf("holder after renewals = %q", s.Holder("l"))
	}
}

func TestRenewByNonHolderFails(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 100)
	if s.Renew("l", "B") {
		t.Error("non-holder renew succeeded")
	}
	if s.Renew("unknown", "A") {
		t.Error("renew of unknown lock succeeded")
	}
}

func TestReleaseWakesWaiter(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 10000)
	got := false
	s.AcquireOrWait("l", "B", 10000, func() { got = true })
	s.Release("l", "A")
	if !got {
		t.Error("waiter not woken on release")
	}
	if s.Holder("l") != "B" {
		t.Errorf("holder = %q", s.Holder("l"))
	}
}

func TestReleaseByNonHolderIgnored(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 10000)
	s.Release("l", "B")
	if s.Holder("l") != "A" {
		t.Error("non-holder release took effect")
	}
}

func TestCancelledWaiterSkipped(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 10000)
	gotB, gotC := false, false
	cancelB := s.AcquireOrWait("l", "B", 10000, func() { gotB = true })
	s.AcquireOrWait("l", "C", 10000, func() { gotC = true })
	cancelB()
	s.Release("l", "A")
	if gotB {
		t.Error("cancelled waiter invoked")
	}
	if !gotC {
		t.Error("next waiter not invoked")
	}
}

func TestAcquireOrWaitImmediateWhenFree(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	got := false
	s.AcquireOrWait("l", "A", 100, func() { got = true })
	if !got {
		t.Error("immediate acquire not invoked")
	}
}

func TestExpiryThenReacquireByThirdParty(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 100)
	eng.Run(150)
	if s.Holder("l") != "" {
		t.Fatalf("lock not expired: %q", s.Holder("l"))
	}
	if !s.TryAcquire("l", "C", 100) {
		t.Error("acquire after expiry failed")
	}
}

// TestPartitionedHolderFenced models the split-brain half of a partition: the
// holder is cut off from the lock service (modelled as simply no longer
// renewing), its lease expires, a new holder acquires, and when the old
// holder comes back its writes — guarded by the fencing token it recorded at
// acquire time — are rejected.
func TestPartitionedHolderFenced(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	if !s.TryAcquire("master", "A", 100) {
		t.Fatal("A acquire failed")
	}
	tokA := s.Token("master")
	if !s.Validate("master", "A", tokA) {
		t.Fatal("A's fresh token invalid")
	}

	// B queues for the lock; A is partitioned away and stops renewing.
	var bTok uint64
	acquired := false
	s.AcquireOrWait("master", "B", 100, func() {
		acquired = true
		bTok = s.Token("master")
	})
	eng.Run(150) // past A's lease deadline

	if !acquired {
		t.Fatal("lease did not expire for the waiting standby")
	}
	if s.Holder("master") != "B" {
		t.Fatalf("holder = %q, want B", s.Holder("master"))
	}
	if bTok <= tokA {
		t.Fatalf("token did not advance across ownership change: A=%d B=%d", tokA, bTok)
	}

	// Partition heals: A tries to write with its stale token. A guarded
	// store must reject it while accepting B's.
	if s.Validate("master", "A", tokA) {
		t.Error("deposed holder's stale token validated after heal")
	}
	if !s.Validate("master", "B", bTok) {
		t.Error("current holder's token rejected")
	}

	// Even if A later reacquires legitimately, the old token stays dead.
	s.Release("master", "B")
	if !s.TryAcquire("master", "A", 100) {
		t.Fatal("A re-acquire after release failed")
	}
	if s.Validate("master", "A", tokA) {
		t.Error("pre-partition token resurrected by re-acquire")
	}
	if !s.Validate("master", "A", s.Token("master")) {
		t.Error("A's new token invalid")
	}
}

// A self-renewal must not burn a token: the fence only moves when ownership
// actually changes hands.
func TestRenewKeepsToken(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.TryAcquire("l", "A", 100)
	tok := s.Token("l")
	eng.Run(50)
	s.Renew("l", "A")
	s.TryAcquire("l", "A", 100) // re-acquire path renews too
	if s.Token("l") != tok {
		t.Errorf("token moved on renewal: %d -> %d", tok, s.Token("l"))
	}
}
