package agent

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
)

func (h *harness) sendDelta(seq uint64, entries ...protocol.CapacityEntry) {
	h.net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(h.agent.Machine),
		protocol.CapacityDelta{Entries: entries, Seq: seq})
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
}

func (h *harness) repairQueries() []protocol.CapacityQuery {
	var out []protocol.CapacityQuery
	for _, m := range h.toMaster {
		if q, ok := m.(protocol.CapacityQuery); ok && q.Repair {
			out = append(out, q)
		}
	}
	return out
}

// A sequence gap in the per-agent capacity stream means a delta to this
// machine was lost: the agent must request an immediate anchor (a full
// CapacitySync) instead of silently drifting until the next master-side
// safety net.
func TestDeltaGapRequestsAnchor(t *testing.T) {
	h := newHarness(t)
	size := resource.New(1000, 2048)

	h.sendDelta(1, protocol.CapacityEntry{App: "app1", UnitID: 1, Size: size, Count: 2})
	if n := len(h.repairQueries()); n != 0 {
		t.Fatalf("%d repair queries after an in-order delta, want 0", n)
	}
	// Seq 2 is lost; seq 3 arrives. Its own entries still apply, and a
	// repair query goes out.
	h.sendDelta(3, protocol.CapacityEntry{App: "app1", UnitID: 2, Size: size, Count: 1})
	if got := h.agent.Capacity("app1", 2); got != 1 {
		t.Errorf("gap-carrying delta not applied: capacity = %d, want 1", got)
	}
	qs := h.repairQueries()
	if len(qs) != 1 {
		t.Fatalf("%d repair queries after a gap, want 1", len(qs))
	}
	if qs[0].Machine != h.agent.ID() {
		t.Errorf("repair query for machine %d, want %d", qs[0].Machine, h.agent.ID())
	}

	// More gaps inside the throttle window do not pile on more queries.
	h.sendDelta(7, protocol.CapacityEntry{App: "app1", UnitID: 3, Size: size, Count: 1})
	if n := len(h.repairQueries()); n != 1 {
		t.Errorf("%d repair queries inside the throttle window, want still 1", n)
	}
	// Past the window, a fresh gap may ask again.
	h.eng.Run(h.eng.Now() + sim.Second)
	h.sendDelta(12, protocol.CapacityEntry{App: "app1", UnitID: 4, Size: size, Count: 1})
	if n := len(h.repairQueries()); n != 2 {
		t.Errorf("%d repair queries after the window elapsed, want 2", n)
	}
}

// A CapacitySync that was overtaken by deltas sent after it (jitter
// reordering, or a duplicated sync) is a stale snapshot: replacing the table
// with it would erase the newer deltas permanently.
func TestStaleSyncDropped(t *testing.T) {
	h := newHarness(t)
	size := resource.New(1000, 2048)

	h.sendDelta(1, protocol.CapacityEntry{App: "app1", UnitID: 1, Size: size, Count: 2})
	h.sendDelta(2, protocol.CapacityEntry{App: "app1", UnitID: 1, Size: size, Count: 3})

	// A sync stamped seq 1 (sent before delta 2, arriving after it) must
	// not roll the ledger back to its snapshot.
	h.net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(h.agent.Machine),
		protocol.CapacitySync{
			Machine: h.agent.ID(),
			Entries: []protocol.CapacityEntry{{App: "app1", UnitID: 1, Size: size, Count: 2}},
			Seq:     1,
		})
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	if got := h.agent.Capacity("app1", 1); got != 5 {
		t.Errorf("stale sync clobbered the ledger: capacity = %d, want 5", got)
	}

	// A fresh sync (seq beyond the stream) replaces the table, and deltas
	// it already folded in are deduplicated afterwards.
	h.net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(h.agent.Machine),
		protocol.CapacitySync{
			Machine: h.agent.ID(),
			Entries: []protocol.CapacityEntry{{App: "app1", UnitID: 1, Size: size, Count: 4}},
			Seq:     5,
		})
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	if got := h.agent.Capacity("app1", 1); got != 4 {
		t.Errorf("fresh sync not applied: capacity = %d, want 4", got)
	}
	h.sendDelta(4, protocol.CapacityEntry{App: "app1", UnitID: 1, Size: size, Count: 9})
	if got := h.agent.Capacity("app1", 1); got != 4 {
		t.Errorf("pre-sync delta replayed after the sync: capacity = %d, want 4", got)
	}
}
