package agent

import (
	"strings"
	"testing"

	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

type harness struct {
	eng   *sim.Engine
	net   *transport.Net
	agent *Agent
	// captured messages by destination
	toMaster []transport.Message
	toApp    []transport.Message
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	eng := sim.NewEngine(3)
	net := transport.NewNet(eng)
	top, err := topology.Build(topology.Spec{
		Racks: 1, MachinesPerRack: 1,
		MachineCapacity: resource.New(12000, 96*1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{eng: eng, net: net}
	// Agents reuse one heartbeat struct per beat (the receiver consumes it
	// synchronously at delivery); a capturing test must snapshot it.
	net.Register(protocol.MasterEndpoint, func(_ transport.EndpointID, m transport.Message) {
		if hb, ok := m.(*protocol.AgentHeartbeat); ok {
			c := *hb
			c.Allocations = append([]protocol.AllocDelta(nil), hb.Allocations...)
			c.Changes = append([]protocol.AllocDelta(nil), hb.Changes...)
			m = c
		}
		h.toMaster = append(h.toMaster, m)
	})
	net.Register("app1", func(_ transport.EndpointID, m transport.Message) { h.toApp = append(h.toApp, m) })
	h.agent = New(DefaultConfig(), eng, net, top.Machine(top.Machines()[0]))
	return h
}

func (h *harness) grantCapacity(app string, unitID, count int, size resource.Vector) {
	h.net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(h.agent.Machine), protocol.CapacityUpdate{
		App: app, UnitID: unitID, Size: size, Delta: count, Seq: uint64(h.eng.Fired() + 1e6),
	})
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
}

func (h *harness) sendPlan(app string, unitID int, workerID string, size resource.Vector, seq uint64) {
	h.net.Send(app, protocol.AgentEndpoint(h.agent.Machine), protocol.WorkPlan{
		App: app, UnitID: unitID, WorkerID: workerID, Size: size, Seq: seq,
	})
}

func (h *harness) lastAppStatus(t *testing.T) protocol.WorkerStatus {
	t.Helper()
	for i := len(h.toApp) - 1; i >= 0; i-- {
		if s, ok := h.toApp[i].(protocol.WorkerStatus); ok {
			return s
		}
	}
	t.Fatal("no WorkerStatus received")
	return protocol.WorkerStatus{}
}

var size = resource.New(1000, 2048)

func TestHeartbeatsFlow(t *testing.T) {
	h := newHarness(t)
	h.eng.Run(5 * sim.Second)
	beats := 0
	for _, m := range h.toMaster {
		if _, ok := m.(protocol.AgentHeartbeat); ok {
			beats++
		}
	}
	if beats < 4 {
		t.Errorf("heartbeats = %d, want >= 4", beats)
	}
}

func TestHeartbeatCarriesAllocations(t *testing.T) {
	h := newHarness(t)
	h.grantCapacity("app1", 1, 3, size)
	h.toMaster = nil
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	found := false
	for _, m := range h.toMaster {
		hb, ok := m.(protocol.AgentHeartbeat)
		if !ok {
			continue
		}
		for _, d := range hb.Allocations {
			if d.App == "app1" && d.UnitID == 1 && d.Count == 3 {
				found = true
			}
		}
		for _, d := range hb.Changes {
			if d.App == "app1" && d.UnitID == 1 && d.Count == 3 {
				found = true
			}
		}
	}
	if !found {
		t.Error("heartbeat missing allocations")
	}
}

func TestWorkerStartWithinCapacity(t *testing.T) {
	h := newHarness(t)
	h.grantCapacity("app1", 1, 2, size)
	h.sendPlan("app1", 1, "w1", size, 1)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	s := h.lastAppStatus(t)
	if s.WorkerID != "w1" || s.State != protocol.WorkerRunning {
		t.Errorf("status = %+v", s)
	}
	if h.agent.Proc("w1") == nil || h.agent.Proc("w1").State != protocol.WorkerRunning {
		t.Error("proc not running")
	}
}

func TestWorkerRefusedWithoutCapacity(t *testing.T) {
	h := newHarness(t)
	h.sendPlan("app1", 1, "w1", size, 1)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	s := h.lastAppStatus(t)
	if s.State != protocol.WorkerFailed || !strings.Contains(s.FailureDetail, "no capacity") {
		t.Errorf("status = %+v", s)
	}
}

func TestWorkerRefusedBeyondCapacity(t *testing.T) {
	h := newHarness(t)
	h.grantCapacity("app1", 1, 1, size)
	h.sendPlan("app1", 1, "w1", size, 1)
	h.sendPlan("app1", 1, "w2", size, 2)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	if h.agent.Proc("w1") == nil {
		t.Error("first worker missing")
	}
	if h.agent.Proc("w2") != nil {
		t.Error("second worker started beyond capacity")
	}
}

func TestStopWorker(t *testing.T) {
	h := newHarness(t)
	h.grantCapacity("app1", 1, 1, size)
	h.sendPlan("app1", 1, "w1", size, 1)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	h.net.Send("app1", protocol.AgentEndpoint(h.agent.Machine), protocol.StopWorker{App: "app1", WorkerID: "w1", Seq: 2})
	h.eng.Run(h.eng.Now() + sim.Second)
	if h.agent.Proc("w1") != nil {
		t.Error("proc still present after stop")
	}
	if s := h.lastAppStatus(t); s.State != protocol.WorkerFinished {
		t.Errorf("status = %+v", s)
	}
}

func TestCapacityEnsuranceKillsExcess(t *testing.T) {
	// Paper §2.2: "when the resource capacity decreases and application
	// master does not choose one process to stop, FuxiAgent will kill one
	// process of this application compulsorily".
	h := newHarness(t)
	h.grantCapacity("app1", 1, 2, size)
	h.sendPlan("app1", 1, "w1", size, 1)
	h.sendPlan("app1", 1, "w2", size, 2)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	h.grantCapacity("app1", 1, -1, size) // revoke one container
	h.eng.Run(h.eng.Now() + sim.Second)
	alive := 0
	for _, p := range h.agent.Procs() {
		if p.App == "app1" {
			alive++
		}
	}
	if alive != 1 {
		t.Errorf("alive = %d, want 1", alive)
	}
	if h.agent.KilledForCapacity != 1 {
		t.Errorf("KilledForCapacity = %d", h.agent.KilledForCapacity)
	}
	// Most recent worker dies first.
	if h.agent.Proc("w1") == nil || h.agent.Proc("w2") != nil {
		t.Error("wrong victim")
	}
}

func TestOverloadKillsWorstOffender(t *testing.T) {
	h := newHarness(t)
	h.grantCapacity("app1", 1, 2, size)
	h.sendPlan("app1", 1, "w1", size, 1)
	h.sendPlan("app1", 1, "w2", size, 2)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	// w2's real usage explodes beyond machine capacity.
	h.agent.Proc("w2").Usage = resource.New(1000, 100*1024)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	if h.agent.Proc("w2") != nil {
		t.Error("over-user survived")
	}
	if h.agent.Proc("w1") == nil {
		t.Error("well-behaved worker killed")
	}
	if h.agent.KilledForOverload != 1 {
		t.Errorf("KilledForOverload = %d", h.agent.KilledForOverload)
	}
	if s := h.lastAppStatus(t); !strings.Contains(s.FailureDetail, "overload") {
		t.Errorf("detail = %q", s.FailureDetail)
	}
}

func TestOverloadIgnoresVirtualDimensions(t *testing.T) {
	// Virtual resources are scheduler-side tokens; a worker sized with a
	// virtual dimension the machine's physical capacity vector lacks must
	// not trip the overload killer.
	h := newHarness(t)
	vsize := resource.New(1000, 2048).With("FrontendSlot", 1)
	h.grantCapacity("app1", 1, 1, vsize)
	h.sendPlan("app1", 1, "w1", vsize, 1)
	h.eng.Run(h.eng.Now() + 3*sim.Second)
	if h.agent.Proc("w1") == nil {
		t.Fatal("worker with virtual-dim size was killed")
	}
	if h.agent.KilledForOverload != 0 {
		t.Errorf("KilledForOverload = %d", h.agent.KilledForOverload)
	}
}

func TestCrashWorkerAutoRestarts(t *testing.T) {
	h := newHarness(t)
	h.grantCapacity("app1", 1, 1, size)
	h.sendPlan("app1", 1, "w1", size, 1)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	h.toApp = nil
	h.agent.CrashWorker("w1", "segfault")
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	// Failure was reported AND the process is running again.
	sawFail := false
	for _, m := range h.toApp {
		if s, ok := m.(protocol.WorkerStatus); ok && s.State == protocol.WorkerFailed {
			sawFail = true
		}
	}
	if !sawFail {
		t.Error("crash not reported")
	}
	p := h.agent.Proc("w1")
	if p == nil || p.State != protocol.WorkerRunning {
		t.Error("worker not restarted")
	}
}

func TestDaemonCrashKeepsProcesses(t *testing.T) {
	h := newHarness(t)
	h.grantCapacity("app1", 1, 1, size)
	h.sendPlan("app1", 1, "w1", size, 1)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	h.agent.CrashDaemon()
	if h.agent.Up() {
		t.Fatal("agent still up")
	}
	// Paper §4.3.1: processes survive the daemon.
	if h.agent.Proc("w1") == nil {
		t.Fatal("process killed by daemon crash")
	}
	h.toMaster = nil
	h.eng.Run(h.eng.Now() + 3*sim.Second)
	if len(h.toMaster) != 0 {
		t.Error("heartbeats continued while daemon down")
	}
}

func TestDaemonRestartAdoptsAndResyncs(t *testing.T) {
	h := newHarness(t)
	h.grantCapacity("app1", 1, 1, size)
	h.sendPlan("app1", 1, "w1", size, 1)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	h.agent.CrashDaemon()
	h.eng.Run(h.eng.Now() + sim.Second)

	h.toMaster, h.toApp = nil, nil
	h.agent.RestartDaemon()
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)

	// It must query the master for capacity and the app for worker lists.
	sawQuery := false
	for _, m := range h.toMaster {
		if _, ok := m.(protocol.CapacityQuery); ok {
			sawQuery = true
		}
	}
	if !sawQuery {
		t.Error("no CapacityQuery after restart")
	}
	sawListReq := false
	for _, m := range h.toApp {
		if _, ok := m.(protocol.WorkerListRequest); ok {
			sawListReq = true
		}
	}
	if !sawListReq {
		t.Error("no WorkerListRequest after restart")
	}

	// Master replies with the capacity table; app replies with its list;
	// the process is adopted, not killed.
	h.net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(h.agent.Machine), protocol.CapacitySync{
		Machine: h.agent.ID(),
		Entries: []protocol.CapacityEntry{{App: "app1", UnitID: 1, Size: size, Count: 1}},
		Seq:     999,
	})
	h.net.Send("app1", protocol.AgentEndpoint(h.agent.Machine), protocol.WorkerListReply{
		App:     "app1",
		Workers: []protocol.WorkPlan{{App: "app1", UnitID: 1, WorkerID: "w1", Size: size}},
		Seq:     1000,
	})
	h.eng.Run(h.eng.Now() + sim.Second)
	p := h.agent.Proc("w1")
	if p == nil || p.State != protocol.WorkerRunning {
		t.Error("worker not adopted after daemon restart")
	}
	if h.agent.Capacity("app1", 1) != 1 {
		t.Errorf("capacity = %d, want 1", h.agent.Capacity("app1", 1))
	}
}

func TestAdoptKillsUnknownProcs(t *testing.T) {
	h := newHarness(t)
	h.grantCapacity("app1", 1, 2, size)
	h.sendPlan("app1", 1, "w1", size, 1)
	h.sendPlan("app1", 1, "w2", size, 2)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	h.agent.CrashDaemon()
	h.agent.RestartDaemon()
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	// App only acknowledges w1.
	h.net.Send("app1", protocol.AgentEndpoint(h.agent.Machine), protocol.WorkerListReply{
		App:     "app1",
		Workers: []protocol.WorkPlan{{App: "app1", UnitID: 1, WorkerID: "w1", Size: size}},
		Seq:     1000,
	})
	h.eng.Run(h.eng.Now() + sim.Second)
	if h.agent.Proc("w2") != nil {
		t.Error("unacknowledged process survived adoption")
	}
	if h.agent.Proc("w1") == nil {
		t.Error("acknowledged process killed")
	}
}

func TestMachineCrashKillsEverything(t *testing.T) {
	h := newHarness(t)
	h.grantCapacity("app1", 1, 1, size)
	h.sendPlan("app1", 1, "w1", size, 1)
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	h.toApp = nil
	h.agent.CrashMachine()
	h.eng.Run(h.eng.Now() + 3*sim.Second)
	if len(h.agent.Procs()) != 0 {
		t.Error("processes survived machine crash")
	}
	// A dead machine reports nothing.
	for _, m := range h.toApp {
		if _, ok := m.(protocol.WorkerStatus); ok {
			t.Error("status escaped a dead machine")
		}
	}
	// Reboot: fresh table, heartbeats resume.
	h.toMaster = nil
	h.agent.RestartMachine()
	h.eng.Run(h.eng.Now() + 3*sim.Second)
	beats := 0
	for _, m := range h.toMaster {
		if _, ok := m.(protocol.AgentHeartbeat); ok {
			beats++
		}
	}
	if beats == 0 {
		t.Error("no heartbeats after machine restart")
	}
}

func TestHealthScoreInHeartbeat(t *testing.T) {
	h := newHarness(t)
	h.agent.SetHealth(12)
	h.eng.Run(2 * sim.Second)
	found := false
	for _, m := range h.toMaster {
		if hb, ok := m.(protocol.AgentHeartbeat); ok && hb.HealthScore == 12 {
			found = true
		}
	}
	if !found {
		t.Error("health score not propagated")
	}
}

func TestDuplicateWorkPlanIgnored(t *testing.T) {
	h := newHarness(t)
	h.grantCapacity("app1", 1, 2, size)
	h.sendPlan("app1", 1, "w1", size, 7)
	h.sendPlan("app1", 1, "w1", size, 7) // duplicate delivery
	h.eng.Run(h.eng.Now() + 2*sim.Second)
	if len(h.agent.Procs()) != 1 {
		t.Errorf("procs = %d, want 1", len(h.agent.Procs()))
	}
}
