// Package agent implements FuxiAgent, the per-machine daemon (paper §2.2).
// Its two roles are status collection (periodic heartbeats with local
// allocations and a plugin-derived health score) and process management with
// isolation: workers start only inside granted capacity ("resource capacity
// ensurance"), excess processes are killed when capacity shrinks, and the
// machine-overload guard kills the worst over-user.
//
// The daemon and the worker processes it supervises fail independently: a
// daemon crash leaves processes running (its failover re-adopts them, paper
// §4.3.1), while a machine crash kills everything.
//
// Hot-path identifiers: the agent speaks its dense machine ID on the wire
// (heartbeats, capacity queries) and keys its capacity ledger by a locally
// interned application ID, so the steady-state beat and the per-round
// capacity-delta decode hash integers, not names. Names survive at the
// boundaries: the anchor allocation table (apps must be recognizable across
// master failovers) and the worker-management messages of the job layer.
package agent

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Config tunes a FuxiAgent.
type Config struct {
	// HeartbeatInterval is the AgentHeartbeat period.
	HeartbeatInterval sim.Time
	// AnchorEvery is the full-sync anchor period of the delta-encoded
	// heartbeat stream: every AnchorEvery-th beat carries the complete
	// allocation table (Full), the beats between carry only changed
	// entries (or nothing). 0 takes the default of 10 beats.
	AnchorEvery int
	// WorkerStartDelay models process start cost: package download plus
	// exec (the paper's Table 2 attributes its 11.84 s worker-start
	// overhead to downloading ~400 MB worker binaries).
	WorkerStartDelay sim.Time
}

// hbRingLen is the heartbeat reuse rotation depth (see Agent.hbRing).
const hbRingLen = 8

// DefaultConfig returns production-flavoured defaults.
func DefaultConfig() Config {
	return Config{
		HeartbeatInterval: sim.Second,
		AnchorEvery:       10,
		WorkerStartDelay:  500 * sim.Millisecond,
	}
}

// capKey packs one (app, unit) capacity address into a single integer —
// the agent's local app intern ID in the high half, the unit ID in the low
// half — so the per-delta hot path runs on a value map with 8-byte keys:
// no per-entry pointer, no struct hashing, nothing for the GC to chase.
type capKey uint64

func makeCapKey(app int32, unitID int) capKey {
	return capKey(uint64(uint32(app))<<32 | uint64(uint32(unitID)))
}

func (k capKey) app() int32  { return int32(uint32(k >> 32)) }
func (k capKey) unitID() int { return int(int32(uint32(k))) }

type capEntry struct {
	size  resource.Vector
	count int
}

// Proc is one supervised worker process.
type Proc struct {
	App    string
	UnitID int
	ID     string
	Size   resource.Vector
	State  protocol.WorkerState
	// Usage is the measured consumption; fault injection inflates it to
	// trigger the overload killer. It defaults to Size.
	Usage resource.Vector

	startTimer sim.Cancel
}

// Agent is the per-machine daemon.
type Agent struct {
	Machine string

	cfg      Config
	eng      *sim.Engine
	net      *transport.Net
	cap      resource.Vector
	id       int32                // dense machine ID (on the wire)
	epID     transport.EndpointID // own endpoint
	masterID transport.EndpointID // the logical master endpoint

	// procs is the machine's OS process table: it belongs to the machine,
	// not the daemon, so it survives daemon crashes.
	procs map[string]*Proc

	// appTbl interns application names; capacity/dirty key by the local ID.
	// The table survives daemon crashes (it is only a name dictionary; the
	// ledger itself is rebuilt from the master's CapacitySync).
	appTbl    ident.Table
	capacity  map[capKey]capEntry
	daemonUp  bool
	machineUp bool
	broken    bool // disk corrupted: processes cannot be launched
	health    int
	// gate fences capacity messages from a deposed primary: applying one
	// would desynchronize this table from the successor's rebuilt ledger.
	gate protocol.EpochGate
	// HealthCollector is the plugin hook combining disk statistics,
	// machine load and network I/O into one score (paper §4.3.2); tests
	// and fault injectors override it.
	HealthCollector func() int

	seq    protocol.Sequencer
	dedup  protocol.Dedup
	timers []sim.Cancel
	// nextAnchorReq throttles gap-repair capacity queries: a partition that
	// eats a burst of deltas must produce one query per throttle window,
	// not one per surviving delta.
	nextAnchorReq sim.Time

	// Delta-heartbeat state: dirty marks capacity entries whose count
	// changed since the last beat, sinceAnchor counts beats since the last
	// full-table anchor, and forceAnchor requests an immediate anchor (a
	// restart, a capacity sync replacing the whole table, or a MasterHello
	// from a promoted primary collecting soft state).
	dirty       map[capKey]struct{}
	sinceAnchor int
	forceAnchor bool
	// hbRing/hbBufs are the reusable heartbeat messages and their payload
	// buffers (Changes or Allocations), rotated per send. A slot is only
	// rewritten hbRingLen sends later, and the receiver consumes each
	// message synchronously at delivery (one network latency after the
	// send), so reuse is safe as long as fewer than hbRingLen beats are
	// sent within one delivery window — beats outside the 1 Hz tick come
	// only from MasterHello-triggered anchors, which are paced by
	// hello/beat round trips. The 5,000 agents' steady-state beat stream
	// allocates nothing.
	hbRing [hbRingLen]protocol.AgentHeartbeat
	hbBufs [hbRingLen][]protocol.AllocDelta
	hbIdx  int

	// KilledForCapacity and KilledForOverload count enforcement actions.
	KilledForCapacity int
	KilledForOverload int
}

// New starts a FuxiAgent for machine m and registers its endpoint.
func New(cfg Config, eng *sim.Engine, net *transport.Net, m *topology.Machine) *Agent {
	a := &Agent{
		Machine:   m.Name,
		cfg:       cfg,
		eng:       eng,
		net:       net,
		cap:       m.Capacity,
		id:        m.ID(),
		procs:     make(map[string]*Proc),
		capacity:  make(map[capKey]capEntry),
		daemonUp:  true,
		machineUp: true,
		health:    100,
		dirty:     make(map[capKey]struct{}),
	}
	if a.cfg.AnchorEvery <= 0 {
		a.cfg.AnchorEvery = 10
	}
	a.forceAnchor = true // first beat announces the (empty) table in full
	a.HealthCollector = func() int { return a.health }
	a.epID = net.Register(a.endpoint(), a.handle)
	a.masterID = net.Endpoint(protocol.MasterEndpoint)
	a.timers = append(a.timers, eng.Every(cfg.HeartbeatInterval, a.tick))
	return a
}

func (a *Agent) endpoint() string { return protocol.AgentEndpoint(a.Machine) }

// ID returns the agent's dense machine ID.
func (a *Agent) ID() int32 { return a.id }

// SetHealth sets the base health score returned by the default collector.
func (a *Agent) SetHealth(score int) { a.health = score }

// Up reports whether both the machine and the daemon are running.
func (a *Agent) Up() bool { return a.machineUp && a.daemonUp }

// Procs returns the live process table (authoritative machine state).
func (a *Agent) Procs() map[string]*Proc { return a.procs }

// Proc returns one process by worker ID (nil when absent).
func (a *Agent) Proc(workerID string) *Proc { return a.procs[workerID] }

// Capacity returns the granted container count for (app, unit).
func (a *Agent) Capacity(app string, unitID int) int {
	id := a.appTbl.ID(app)
	if id < 0 {
		return 0
	}
	return a.capacity[makeCapKey(id, unitID)].count
}

// Allocations returns the agent's full capacity table as app -> unit ->
// count (a copy, names at the boundary). The cluster-wide invariant checker
// compares it against the master's grant ledger.
func (a *Agent) Allocations() map[string]map[int]int {
	out := make(map[string]map[int]int, len(a.capacity))
	for k, e := range a.capacity {
		if e.count <= 0 {
			continue
		}
		app := a.appTbl.Name(k.app())
		if out[app] == nil {
			out[app] = make(map[int]int)
		}
		out[app][k.unitID()] = e.count
	}
	return out
}

// allocTable flattens the live capacity table into the sorted wire form an
// anchor heartbeat carries, reusing the heartbeat payload buffer.
func (a *Agent) allocTable(buf []protocol.AllocDelta) []protocol.AllocDelta {
	out := buf[:0]
	for k, e := range a.capacity {
		if e.count > 0 {
			out = append(out, protocol.AllocDelta{App: a.appTbl.Name(k.app()), UnitID: k.unitID(), Count: e.count})
		}
	}
	protocol.SortAllocDeltas(out)
	return out
}

// MasterEpoch returns the highest master election epoch this agent has
// observed (0 before any epoch-stamped message arrived).
func (a *Agent) MasterEpoch() int { return a.gate.Current() }

// staleEpoch fences capacity messages from a deposed primary, resetting the
// master dedup channel when a genuinely newer epoch appears.
func (a *Agent) staleEpoch(epoch int) bool {
	return a.gate.StaleCh(epoch, &a.dedup, int32(a.masterID), protocol.ChanCap)
}

// ---------------------------------------------------------------------------
// heartbeat and enforcement
// ---------------------------------------------------------------------------

func (a *Agent) tick() {
	if !a.Up() {
		return
	}
	a.enforceOverload()
	a.sendHeartbeat()
}

// sendHeartbeat emits the next beat of the delta-encoded stream: an anchor
// (full allocation table) when due or forced, a change list when capacity
// moved since the last beat, and a bare liveness/health beat otherwise —
// the common case at steady state, which builds no maps at all.
func (a *Agent) sendHeartbeat() {
	slot := a.hbIdx % hbRingLen
	a.hbIdx++
	hb := &a.hbRing[slot]
	*hb = protocol.AgentHeartbeat{
		Machine:     a.id,
		HealthScore: a.HealthCollector(),
		Seq:         a.seq.Next(),
	}
	a.sinceAnchor++
	if a.forceAnchor || a.sinceAnchor >= a.cfg.AnchorEvery {
		hb.Full = true
		a.hbBufs[slot] = a.allocTable(a.hbBufs[slot])
		hb.Allocations = a.hbBufs[slot]
		// Anchor time is also reaping time: zero-count entries are kept
		// between anchors so a returning grant for the same (app, unit)
		// reuses its entry, but entries dead for a whole anchor period
		// (typically unregistered apps) would otherwise accumulate forever.
		for k, e := range a.capacity {
			if e.count <= 0 {
				delete(a.capacity, k)
			}
		}
		a.forceAnchor = false
		a.sinceAnchor = 0
		clear(a.dirty)
	} else if len(a.dirty) > 0 {
		changes := a.hbBufs[slot][:0]
		for k := range a.dirty {
			changes = append(changes, protocol.AllocDelta{
				App: a.appTbl.Name(k.app()), UnitID: k.unitID(), Count: a.capacity[k].count,
			})
		}
		protocol.SortAllocDeltas(changes)
		a.hbBufs[slot] = changes
		hb.Changes = changes
		clear(a.dirty)
	}
	a.net.SendID(a.epID, a.masterID, hb)
}

// sendAnchorBeat forces the next heartbeat to be a full anchor and sends it
// immediately (soft-state collection by a promoted master, restarts).
func (a *Agent) sendAnchorBeat() {
	a.forceAnchor = true
	a.sendHeartbeat()
}

// anchorRequestMin is the minimum spacing between gap-repair capacity
// queries (see requestAnchor).
const anchorRequestMin = 250 * sim.Millisecond

// requestAnchor asks the master for a full CapacitySync because a sequence
// gap showed a capacity delta to this machine was lost. Throttled: a storm
// that eats many deltas yields one query per window, and the sync that
// answers any of them re-baselines the whole ledger.
func (a *Agent) requestAnchor() {
	now := a.eng.Now()
	if now < a.nextAnchorReq {
		return
	}
	a.nextAnchorReq = now + anchorRequestMin
	a.net.SendID(a.epID, a.masterID, protocol.CapacityQuery{
		Machine: a.id, Repair: true, Seq: a.seq.Next(),
	})
}

// enforceOverload kills processes while measured physical usage (CPU,
// memory) exceeds machine capacity, choosing "the process whose real
// resource usage exceeds its own resource usage most" (paper §2.2).
// Virtual resources are scheduler-side concurrency tokens, not measurable
// machine load, so they are excluded here.
func (a *Agent) enforceOverload() {
	for {
		var total resource.Vector
		for _, p := range a.procs {
			if p.State == protocol.WorkerRunning {
				total = total.Add(p.Usage)
			}
		}
		if a.cap.CPUMilli() >= total.CPUMilli() && a.cap.MemoryMB() >= total.MemoryMB() {
			return
		}
		var victim *Proc
		worst := float64(-1)
		for _, p := range a.procs {
			if p.State != protocol.WorkerRunning {
				continue
			}
			over := p.Usage.Sub(p.Size).DominantShare(a.cap)
			if over > worst || (over == worst && (victim == nil || p.ID < victim.ID)) {
				worst = over
				victim = p
			}
		}
		if victim == nil {
			return
		}
		a.KilledForOverload++
		a.killProc(victim, "killed: machine overload")
	}
}

// ---------------------------------------------------------------------------
// message handling
// ---------------------------------------------------------------------------

func (a *Agent) handle(from transport.EndpointID, msg transport.Message) {
	if !a.Up() {
		return
	}
	switch t := msg.(type) {
	case protocol.CapacityUpdate:
		if a.staleEpoch(t.Epoch) {
			return
		}
		if a.dedup.ObserveCh(int32(from), protocol.ChanCap, t.Seq) == protocol.Duplicate {
			return
		}
		a.applyCapacity(t.App, t.UnitID, t.Size, t.Delta)
	case protocol.CapacityDelta:
		if a.staleEpoch(t.Epoch) {
			return
		}
		switch a.dedup.ObserveCh(int32(from), protocol.ChanCap, t.Seq) {
		case protocol.Duplicate:
			return
		case protocol.Gap:
			// The master numbers this agent's capacity stream per agent, so
			// a gap means a delta to THIS machine was lost (a dropped or
			// partitioned-away message). The entries in hand are still
			// fresh deltas and are applied below, but the ledger is now
			// missing the lost ones — request an immediate anchor instead
			// of drifting until someone notices (the agent has no periodic
			// repair sync of its own).
			a.requestAnchor()
		}
		// One intern per run of equal app names: a round's delta lists the
		// same app's units contiguously, and string equality short-circuits
		// on the header, so the memo kills most per-entry string hashing.
		lastApp, lastID := "", int32(-1)
		for _, e := range t.Entries {
			if lastID < 0 || e.App != lastApp {
				lastApp, lastID = e.App, a.appTbl.Intern(e.App)
			}
			a.applyCapacityID(lastID, e.UnitID, e.Size, e.Count)
		}
	case protocol.CapacitySync:
		if a.staleEpoch(t.Epoch) {
			return
		}
		// The sync shares the per-agent capacity sequence with the delta
		// stream: one that arrives behind the high-water mark (reordered
		// under jitter past deltas sent after it, or a duplicate) is a stale
		// snapshot, and replacing the table with it would erase the newer
		// deltas for good. Seq 0 (direct test injection) bypasses the check.
		if t.Seq != 0 &&
			a.dedup.ObserveCh(int32(from), protocol.ChanCap, t.Seq) == protocol.Duplicate {
			return
		}
		a.applyCapacitySync(t)
	case protocol.WorkPlan:
		if a.dedup.Observe(a.net.Name(from)+"/plan/"+t.WorkerID, t.Seq) == protocol.Duplicate {
			return
		}
		a.startWorker(from, t)
	case protocol.StopWorker:
		a.stopWorker(t)
	case protocol.MasterHello:
		// New primary collecting soft state: report the full table
		// immediately (an anchor beat — the successor rebuilds its free
		// pool from it, so a delta beat would not do). The epoch gate
		// forgets the dead master's sequence numbers only for a genuinely
		// newer epoch — a duplicated hello must not reopen the door to
		// replaying the new master's own messages.
		if a.staleEpoch(t.Epoch) {
			return
		}
		a.sendAnchorBeat()
	case protocol.WorkerListReply:
		a.adoptWorkers(t)
	}
}

func (a *Agent) applyCapacity(app string, unitID int, size resource.Vector, delta int) {
	a.applyCapacityID(a.appTbl.Intern(app), unitID, size, delta)
}

func (a *Agent) applyCapacityID(app int32, unitID int, size resource.Vector, delta int) {
	k := makeCapKey(app, unitID)
	a.dirty[k] = struct{}{}
	e := a.capacity[k]
	e.size = size
	e.count += delta
	if e.count < 0 {
		e.count = 0
	}
	// Zero-count entries stay in the table for reuse: the scale workload
	// cycles (app, unit) capacity on a machine many times, and re-creating
	// the entry each cycle showed up in the paper-scale allocation profile.
	a.capacity[k] = e
	a.ensureCapacity(k, e.count)
}

// ensureCapacity kills excess processes when granted capacity shrank below
// the number of running workers and the application master did not stop one
// itself (paper §2.2 "resource capacity ensurance").
func (a *Agent) ensureCapacity(k capKey, count int) {
	if len(a.procs) == 0 {
		return // nothing supervised (the common state at control-plane scale)
	}
	app := a.appTbl.Name(k.app())
	var owned []*Proc
	for _, p := range a.procs {
		if p.App == app && p.UnitID == k.unitID() {
			owned = append(owned, p)
		}
	}
	for len(owned) > count {
		// Kill deterministically: highest worker ID (most recent) first.
		idx := 0
		for i := 1; i < len(owned); i++ {
			if owned[i].ID > owned[idx].ID {
				idx = i
			}
		}
		victim := owned[idx]
		owned = append(owned[:idx], owned[idx+1:]...)
		a.KilledForCapacity++
		a.killProc(victim, "killed: capacity revoked")
	}
}

// SetBroken simulates the PartialWorkerFailure fault of the paper's §5.4:
// "Disk I/O hang or unstable network connection ... we can then simulate it
// by making disk corrupted. The processes thus can not be launched."
func (a *Agent) SetBroken(broken bool) { a.broken = broken }

func (a *Agent) startWorker(from transport.EndpointID, t protocol.WorkPlan) {
	if _, dup := a.procs[t.WorkerID]; dup {
		return
	}
	if a.broken {
		a.net.SendID(a.epID, from, protocol.WorkerStatus{
			Machine: a.Machine, App: t.App, WorkerID: t.WorkerID,
			State:         protocol.WorkerFailed,
			FailureDetail: "disk corrupted: process cannot be launched",
			Seq:           a.seq.Next(),
		})
		return
	}
	capCount := 0
	if id := a.appTbl.ID(t.App); id >= 0 {
		capCount = a.capacity[makeCapKey(id, t.UnitID)].count
	}
	running := 0
	for _, p := range a.procs {
		if p.App == t.App && p.UnitID == t.UnitID {
			running++
		}
	}
	if running >= capCount {
		// No granted capacity: refuse (isolation rule one).
		a.net.SendID(a.epID, from, protocol.WorkerStatus{
			Machine: a.Machine, App: t.App, WorkerID: t.WorkerID,
			State:         protocol.WorkerFailed,
			FailureDetail: fmt.Sprintf("no capacity for app %s unit %d on %s", t.App, t.UnitID, a.Machine),
			Seq:           a.seq.Next(),
		})
		return
	}
	p := &Proc{App: t.App, UnitID: t.UnitID, ID: t.WorkerID, Size: t.Size, Usage: t.Size, State: protocol.WorkerStarting}
	a.procs[t.WorkerID] = p
	p.startTimer = a.eng.After(a.cfg.WorkerStartDelay, func() {
		if a.procs[t.WorkerID] != p || !a.machineUp {
			return
		}
		p.State = protocol.WorkerRunning
		// First status report: the AM measures worker-start overhead from
		// plan to this message (Table 2).
		a.net.Send(a.endpoint(), p.App, protocol.WorkerStatus{
			Machine: a.Machine, App: p.App, WorkerID: p.ID,
			State: protocol.WorkerRunning, Seq: a.seq.Next(),
		})
	})
}

func (a *Agent) stopWorker(t protocol.StopWorker) {
	p := a.procs[t.WorkerID]
	if p == nil || p.App != t.App {
		return
	}
	if p.startTimer != nil {
		p.startTimer()
	}
	delete(a.procs, t.WorkerID)
	p.State = protocol.WorkerFinished
	a.net.Send(a.endpoint(), p.App, protocol.WorkerStatus{
		Machine: a.Machine, App: p.App, WorkerID: p.ID,
		State: protocol.WorkerFinished, Seq: a.seq.Next(),
	})
}

// killProc force-terminates a process and notifies its application master.
func (a *Agent) killProc(p *Proc, detail string) {
	if p.startTimer != nil {
		p.startTimer()
	}
	delete(a.procs, p.ID)
	p.State = protocol.WorkerFailed
	if a.Up() {
		a.net.Send(a.endpoint(), p.App, protocol.WorkerStatus{
			Machine: a.Machine, App: p.App, WorkerID: p.ID,
			State: protocol.WorkerFailed, FailureDetail: detail, Seq: a.seq.Next(),
		})
	}
}

// CrashWorker simulates a worker process crash (fault injection). Per paper
// §2.2, "FuxiAgent watches the worker's status and restarts it if it
// crashes" — the agent restarts the process after the start delay and the
// application master is told about the failure.
func (a *Agent) CrashWorker(workerID, detail string) {
	p := a.procs[workerID]
	if p == nil {
		return
	}
	a.killProc(p, detail)
	if !a.Up() {
		return
	}
	// Auto-restart inside the still-granted container.
	a.startWorker(a.net.Endpoint(p.App), protocol.WorkPlan{
		App: p.App, UnitID: p.UnitID, WorkerID: p.ID, Size: p.Size, Seq: a.seq.Next(),
	})
}

// ---------------------------------------------------------------------------
// failure and failover
// ---------------------------------------------------------------------------

// CrashDaemon stops the FuxiAgent daemon only: worker processes keep
// running; heartbeats and process management stop.
func (a *Agent) CrashDaemon() {
	if !a.daemonUp {
		return
	}
	a.daemonUp = false
	for _, c := range a.timers {
		c()
	}
	a.timers = nil
	a.net.Unregister(a.endpoint())
	// In-memory daemon state is lost.
	a.capacity = make(map[capKey]capEntry)
	a.dedup = protocol.Dedup{}
}

// RestartDaemon brings the daemon back: it adopts the running processes it
// finds ("existing running tasks will be adopted rather than being killed"),
// asks FuxiMaster for the granted capacity table, and asks each application
// for its expected worker list.
func (a *Agent) RestartDaemon() {
	if a.daemonUp || !a.machineUp {
		return
	}
	a.daemonUp = true
	a.forceAnchor = true
	a.net.Register(a.endpoint(), a.handle)
	a.timers = append(a.timers, a.eng.Every(a.cfg.HeartbeatInterval, a.tick))

	a.net.SendID(a.epID, a.masterID, protocol.CapacityQuery{
		Machine: a.id, Seq: a.seq.Next(),
	})
	apps := map[string]bool{}
	for _, p := range a.procs {
		apps[p.App] = true
	}
	names := make([]string, 0, len(apps))
	for app := range apps {
		names = append(names, app)
	}
	sort.Strings(names)
	for _, app := range names {
		a.net.Send(a.endpoint(), app, protocol.WorkerListRequest{Machine: a.Machine, Seq: a.seq.Next()})
	}
}

func (a *Agent) applyCapacitySync(t protocol.CapacitySync) {
	// The whole table is replaced: the next beat re-anchors rather than
	// enumerating every entry as a change.
	a.forceAnchor = true
	clear(a.dirty)
	a.capacity = make(map[capKey]capEntry, len(t.Entries))
	for _, e := range t.Entries {
		if e.Count > 0 {
			a.capacity[makeCapKey(a.appTbl.Intern(e.App), e.UnitID)] = capEntry{size: e.Size, count: e.Count}
		}
	}
	// Enforce (and below, reap) in sorted name order so the enforcement
	// kills and their failure reports are seed-reproducible (local intern
	// IDs follow first-sight order, not name order, so sort by name).
	keys := make([]capKey, 0, len(a.capacity))
	for k := range a.capacity {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ni, nj := a.appTbl.Name(keys[i].app()), a.appTbl.Name(keys[j].app())
		if ni != nj {
			return ni < nj
		}
		return keys[i].unitID() < keys[j].unitID()
	})
	for _, k := range keys {
		a.ensureCapacity(k, a.capacity[k].count)
	}
	// Processes whose capacity vanished entirely while the daemon was down:
	var orphans []*Proc
	for _, p := range a.procs {
		id := a.appTbl.ID(p.App)
		if id < 0 || a.capacity[makeCapKey(id, p.UnitID)].count == 0 {
			orphans = append(orphans, p)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].ID < orphans[j].ID })
	for _, p := range orphans {
		a.KilledForCapacity++
		a.killProc(p, "killed: capacity revoked during daemon outage")
	}
}

// adoptWorkers reconciles the process table against the application's
// expected worker list: unknown processes are killed, expected-but-missing
// workers are reported failed so the application can reschedule.
func (a *Agent) adoptWorkers(t protocol.WorkerListReply) {
	expect := map[string]protocol.WorkPlan{}
	for _, w := range t.Workers {
		expect[w.WorkerID] = w
	}
	ids := make([]string, 0, len(a.procs))
	for id, p := range a.procs {
		if p.App == t.App {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, ok := expect[id]; !ok {
			a.killProc(a.procs[id], "killed: not in application worker list")
		}
		delete(expect, id)
	}
	missing := make([]string, 0, len(expect))
	for id := range expect {
		missing = append(missing, id)
	}
	sort.Strings(missing)
	for _, id := range missing {
		a.net.Send(a.endpoint(), t.App, protocol.WorkerStatus{
			Machine: a.Machine, App: t.App, WorkerID: id,
			State:         protocol.WorkerFailed,
			FailureDetail: "lost during agent outage",
			Seq:           a.seq.Next(),
		})
	}
}

// CrashMachine halts the whole node: all processes die silently (no
// failure reports escape a dead machine) and the endpoint goes dark so the
// master's heartbeat timeout fires.
func (a *Agent) CrashMachine() {
	if !a.machineUp {
		return
	}
	a.machineUp = false
	for _, c := range a.timers {
		c()
	}
	a.timers = nil
	for id, p := range a.procs {
		if p.startTimer != nil {
			p.startTimer()
		}
		p.State = protocol.WorkerFailed
		delete(a.procs, id)
	}
	a.capacity = make(map[capKey]capEntry)
	a.net.SetDown(a.endpoint(), true)
}

// RestartMachine boots the node fresh: empty process table, daemon up,
// heartbeats resume (the master will MachineUp it).
func (a *Agent) RestartMachine() {
	if a.machineUp {
		return
	}
	a.machineUp = true
	a.daemonUp = true
	a.forceAnchor = true
	clear(a.dirty)
	a.dedup = protocol.Dedup{}
	a.net.SetDown(a.endpoint(), false)
	a.net.Register(a.endpoint(), a.handle)
	a.timers = append(a.timers, a.eng.Every(a.cfg.HeartbeatInterval, a.tick))
}
