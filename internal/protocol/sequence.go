package protocol

// Sequencer issues monotonically increasing sequence numbers for one sender.
// The zero value is ready to use; the first number issued is 1 so that a
// receiver's zero "last seen" compares correctly.
type Sequencer struct {
	next uint64
}

// Next returns the next sequence number.
func (s *Sequencer) Next() uint64 {
	s.next++
	return s.next
}

// Current returns the most recently issued number (0 before the first Next).
func (s *Sequencer) Current() uint64 { return s.next }

// Chan enumerates the per-sender logical channels multiplexed over one
// Dedup. Hot paths key the high-water map by (sender endpoint ID, Chan)
// instead of hashing sender name strings per message — at paper scale that
// hashing was a measurable slice of the control-plane budget. Free-form
// string channels (e.g. per-worker plan channels) remain available through
// Observe.
type Chan uint8

const (
	// ChanReg carries RegisterApp.
	ChanReg Chan = iota
	// ChanDem carries DemandUpdate.
	ChanDem
	// ChanRet carries GrantReturn / GrantReturnBatch.
	ChanRet
	// ChanUnreg carries UnregisterApp.
	ChanUnreg
	// ChanBad carries BadMachineReport.
	ChanBad
	// ChanCap carries CapacityUpdate / CapacityDelta.
	ChanCap
	// ChanGrant carries GrantUpdate.
	ChanGrant
)

// chanKey packs (sender endpoint ID, Chan) into one integer-keyed map key:
// no string hashing on the per-message dedup path.
type chanKey struct {
	sender int32
	ch     Chan
}

// Dedup tracks the highest sequence number seen from each sender and
// classifies incoming numbers. Delta messages must be applied exactly once
// and in order (paper §3.1); duplicates are dropped and gaps flagged so the
// receiver can request (or await) a full-state sync.
type Dedup struct {
	last   map[string]uint64
	lastCh map[chanKey]uint64
	gaps   uint64
}

// NewDedup returns an empty tracker (maps are created on first use, so an
// idle receiver — e.g. one of a hundred thousand short-lived application
// masters — costs nothing).
func NewDedup() *Dedup {
	return &Dedup{}
}

// Verdict classifies an incoming sequence number.
type Verdict int

const (
	// Accept means the message is fresh and in order: apply it.
	Accept Verdict = iota
	// Duplicate means the message was already applied: drop it.
	Duplicate
	// Gap means at least one earlier message was lost. The message itself
	// is still fresh; Observe applies it and records the gap, relying on
	// the periodic full sync to repair the missed delta.
	Gap
)

// Observe classifies seq from sender and advances the high-water mark for
// fresh messages.
func (d *Dedup) Observe(sender string, seq uint64) Verdict {
	last := d.last[sender]
	switch {
	case seq <= last:
		return Duplicate
	case seq == last+1:
		if d.last == nil {
			d.last = make(map[string]uint64)
		}
		d.last[sender] = seq
		return Accept
	default:
		if d.last == nil {
			d.last = make(map[string]uint64)
		}
		d.last[sender] = seq
		d.gaps++
		return Gap
	}
}

// ObserveCh is Observe keyed by (sender endpoint ID, channel) — the
// hashing-free form for the protocol's fixed channels. The sender is the
// transport-layer EndpointID of the peer (cast to int32).
func (d *Dedup) ObserveCh(sender int32, ch Chan, seq uint64) Verdict {
	k := chanKey{sender, ch}
	last := d.lastCh[k]
	switch {
	case seq <= last:
		return Duplicate
	case seq == last+1:
		if d.lastCh == nil {
			d.lastCh = make(map[chanKey]uint64)
		}
		d.lastCh[k] = seq
		return Accept
	default:
		if d.lastCh == nil {
			d.lastCh = make(map[chanKey]uint64)
		}
		d.lastCh[k] = seq
		d.gaps++
		return Gap
	}
}

// Reset forgets a sender, e.g. after a full-state sync re-baselines it or
// the peer restarted with a fresh sequencer.
func (d *Dedup) Reset(sender string) { delete(d.last, sender) }

// ResetCh forgets one (sender, channel) high-water mark.
func (d *Dedup) ResetCh(sender int32, ch Chan) { delete(d.lastCh, chanKey{sender, ch}) }

// ResetTo sets the high-water mark for a sender, used when a full sync
// carries the sender's current sequence number.
func (d *Dedup) ResetTo(sender string, seq uint64) {
	if d.last == nil {
		d.last = make(map[string]uint64)
	}
	d.last[sender] = seq
}

// ResetToCh sets the high-water mark for one (sender, channel).
func (d *Dedup) ResetToCh(sender int32, ch Chan, seq uint64) {
	if d.lastCh == nil {
		d.lastCh = make(map[chanKey]uint64)
	}
	d.lastCh[chanKey{sender, ch}] = seq
}

// LastCh returns the high-water mark for one (sender, channel) — e.g. the
// highest grant sequence an application master has observed, which the
// full-state sync carries so the master can fence reconciliation against
// its own in-flight grants.
func (d *Dedup) LastCh(sender int32, ch Chan) uint64 { return d.lastCh[chanKey{sender, ch}] }

// Gaps returns the number of gaps observed since construction.
func (d *Dedup) Gaps() uint64 { return d.gaps }

// EpochGate tracks the highest FuxiMaster election epoch a receiver has
// observed and fences messages stamped with an older one — in-flight
// leftovers of a deposed primary that would desynchronize the receiver from
// the promoted successor's rebuilt ledgers. One implementation serves both
// FuxiAgents and application masters so their fencing semantics cannot
// drift apart.
type EpochGate struct {
	epoch int
}

// Current returns the highest epoch observed (0 before any stamped message).
func (g *EpochGate) Current() int { return g.epoch }

// Stale classifies a message's epoch stamp. Messages from a deposed master
// (epoch below the high-water mark) report true and must be dropped. A
// genuinely newer epoch advances the mark and resets channel in d — the
// successor runs a fresh sequencer, and only a real promotion may reopen
// the dedup window (a duplicated hello must not). Epoch 0 (unstamped, e.g.
// direct test injection) is never fenced.
func (g *EpochGate) Stale(epoch int, d *Dedup, channel string) bool {
	if epoch == 0 {
		return false
	}
	if epoch < g.epoch {
		return true
	}
	if epoch > g.epoch {
		g.epoch = epoch
		d.Reset(channel)
	}
	return false
}

// StaleCh is Stale for a (sender endpoint ID, Chan)-keyed dedup channel.
func (g *EpochGate) StaleCh(epoch int, d *Dedup, sender int32, ch Chan) bool {
	if epoch == 0 {
		return false
	}
	if epoch < g.epoch {
		return true
	}
	if epoch > g.epoch {
		g.epoch = epoch
		d.ResetCh(sender, ch)
	}
	return false
}
