// Package protocol defines the wire messages of Fuxi's incremental resource
// management protocol (paper §3) and the sequencing helpers that make delta
// exchange safe over an unreliable network: per-sender sequence numbers give
// receivers duplicate suppression and gap detection, and periodic full-state
// sync messages repair any divergence ("as a safety measurement, application
// masters exchange with FuxiMaster the full state of resources periodically
// to fix any possible inconsistency").
//
// Identifier convention: messages on the per-decision hot paths (grants,
// returns, capacity deltas, heartbeats) carry machines as dense int32 IDs —
// the topology-derived index every process computes identically from the
// shared sorted machine list — so receivers index slices instead of hashing
// names. Application names stay strings on the wire: app identity must
// survive master failover (a successor assigns fresh internal IDs), so apps
// are resolved to interned state once per message at the receiving
// component's edge. Worker-management messages (WorkPlan, WorkerStatus)
// keep machine names: they cross into the job layer, which speaks names.
package protocol

import (
	"slices"
	"strings"

	"repro/internal/resource"
)

// ---------------------------------------------------------------------------
// Application master <-> FuxiMaster
// ---------------------------------------------------------------------------

// RegisterApp announces an application to FuxiMaster, carrying everything
// the scheduler must know up front: the ScheduleUnit definitions, the quota
// group, and the first demand. It is also re-sent during FuxiMaster failover
// so the new primary can rebuild soft state (paper Figure 7).
type RegisterApp struct {
	App        string
	QuotaGroup string
	Units      []resource.ScheduleUnit
	Seq        uint64
}

// DemandUpdate carries incremental changes to an application's resource
// demand: per-locality count deltas for one ScheduleUnit. Counts may be
// negative (demand withdrawal). An application that never changes its mind
// sends exactly one DemandUpdate per unit for its whole lifetime.
type DemandUpdate struct {
	App    string
	UnitID int
	Deltas []resource.LocalityHint
	Seq    uint64
}

// GrantReturn gives granted resources back to FuxiMaster: count containers
// of the unit on one machine are released. Sent when workers exit and the
// application has no further use for the containers.
type GrantReturn struct {
	App     string
	UnitID  int
	Machine int32 // dense machine ID
	Count   int
	Seq     uint64
}

// ReturnEntry is one (unit, machine, count) release inside a
// GrantReturnBatch.
type ReturnEntry struct {
	UnitID  int
	Machine int32 // dense machine ID
	Count   int
}

// GrantReturnBatch coalesces every GrantReturn an application produced in
// one instant into a single wire message (the incremental-communication
// counterpart of the paper's "(M1,3), (M2,4)" grant roll-up, applied to the
// return direction). A hold cycle that frees containers on many machines at
// once costs one message instead of one per machine.
type GrantReturnBatch struct {
	App     string
	Returns []ReturnEntry
	Seq     uint64
}

// MachineDelta is one (machine, ±count) entry of a grant response, matching
// the paper's "(M1,3), (M2,4), ..., (Mn,1)" notation; negative counts are
// revocations. Machines travel as dense IDs (see the package doc's
// identifier convention).
type MachineDelta struct {
	Machine int32 // dense machine ID
	Delta   int
}

// GrantUpdate notifies an application master of scheduling results for one
// of its units: grants (positive) and revocations (negative). Epoch is the
// sending primary's election epoch: receivers fence messages from a deposed
// master that were still in flight when its successor promoted.
type GrantUpdate struct {
	App     string
	UnitID  int
	Changes []MachineDelta
	Epoch   int
	Seq     uint64
}

// FullDemandSync is the periodic full-state safety message from an
// application master: the complete current demand and held grants. The
// receiver reconciles its view to match exactly — unless grants it sent are
// still in flight toward the app (SeenGrantSeq below the master's last sent
// grant sequence), in which case the demand/held views are stale snapshots
// and reconciling against them would re-raise demand the in-flight grants
// already consumed; such syncs are skipped and the next one reconciles.
type FullDemandSync struct {
	App        string
	QuotaGroup string
	Units      []resource.ScheduleUnit
	// SeenGrantSeq is the highest GrantUpdate sequence number the app has
	// observed from the current primary (0 before the first grant).
	SeenGrantSeq uint64
	// Demand[unitID] lists the full (not delta) per-locality wanted counts.
	Demand map[int][]resource.LocalityHint
	// Held[unitID][machineID] is the application's view of current grants,
	// keyed by dense machine ID.
	Held map[int]map[int32]int
	Seq  uint64
}

// UnregisterApp releases everything the application holds. The sender
// re-sends it (bounded, and immediately on a successor's MasterHello) until
// an UnregisterAck lands: an unregister lost with a crashing primary would
// otherwise strand the job's capacity forever — the successor rebuilds the
// grants from agent allocation anchors with nobody left alive to release
// them.
type UnregisterApp struct {
	App string
	Seq uint64
}

// UnregisterAck confirms an UnregisterApp was applied (idempotently: a
// duplicate unregister of an already-removed app is re-acknowledged).
type UnregisterAck struct {
	App   string
	Epoch int
	Seq   uint64
}

// ---------------------------------------------------------------------------
// FuxiAgent <-> FuxiMaster
// ---------------------------------------------------------------------------

// AgentHeartbeat reports a node's health and its current per-application
// allocations. Heartbeats are delta-encoded: most beats carry only liveness
// and the health score (Full false, no maps), a beat after local capacity
// churn carries the changed entries in Changes, and periodic anchor beats
// (plus the reply to a MasterHello and the first beat after a restart) carry
// the complete Allocations table with Full true. The anchor is what the
// failover master uses to rebuild the free pool ("each FuxiAgent re-sends
// the resource allocation on this machine for each application master");
// the deltas keep the steady-state beat allocation-free at 5,000 machines.
type AgentHeartbeat struct {
	Machine int32 // dense machine ID
	// Full marks an anchor beat: Allocations is the complete table and a
	// recovering master may restore from it. Non-anchor beats leave
	// Allocations nil.
	Full bool
	// Allocations is the complete table, sorted by (App, UnitID) — anchor
	// beats only.
	Allocations []AllocDelta
	// Changes lists entries whose count changed since the previous beat
	// (absolute new counts, zero meaning removed); nil when nothing changed
	// or on anchor beats.
	Changes []AllocDelta
	// HealthScore in [0,100]; derived from the agent's plugin collectors
	// (disk statistics, machine load, network I/O). 100 is healthy.
	HealthScore int
	Seq         uint64
}

// AllocDelta is one allocation entry in a heartbeat: the absolute container
// count held for (App, UnitID).
type AllocDelta struct {
	App    string
	UnitID int
	Count  int
}

// SortAllocDeltas orders entries by (App, UnitID) in place, allocation-free
// (the heartbeat path must not pay sort.Slice's reflective swapper).
func SortAllocDeltas(ds []AllocDelta) {
	slices.SortFunc(ds, func(a, b AllocDelta) int {
		if c := strings.Compare(a.App, b.App); c != 0 {
			return c
		}
		return a.UnitID - b.UnitID
	})
}

// CapacityUpdate tells an agent the granted capacity for one application
// unit changed (the agent enforces "resource capacity ensurance": it kills a
// process when capacity drops below running processes and the application
// master does not act).
type CapacityUpdate struct {
	App    string
	UnitID int
	Size   resource.Vector
	Delta  int
	// Epoch fences updates from a deposed primary (see GrantUpdate.Epoch).
	Epoch int
	Seq   uint64
}

// CapacityDelta carries one scheduling round's capacity changes for a single
// agent as a batch of signed per-(app, unit) deltas — the delta-encoded
// replacement for a stream of per-decision CapacityUpdates. A wide round
// that grants and revokes many containers on a machine costs the agent one
// message (and one dedup observation) instead of one per decision; the
// periodic CapacitySync anchor repairs any divergence.
type CapacityDelta struct {
	// Entries hold signed container-count deltas in Count.
	Entries []CapacityEntry
	// Epoch fences deltas from a deposed primary (see GrantUpdate.Epoch).
	Epoch int
	Seq   uint64
}

// MasterHello is broadcast by a newly-promoted primary FuxiMaster asking all
// agents and application masters to re-send their state (failover soft-state
// collection).
type MasterHello struct {
	Epoch int
	Seq   uint64
}

// CapacityQuery is sent by a restarting FuxiAgent to FuxiMaster to re-learn
// "the full granted resource amount from FuxiMaster for each application"
// (paper §4.3.1, FuxiAgent failover). Repair marks a gap-repair query from a
// running agent that detected a lost CapacityDelta — unlike a restart query
// it is no evidence of a machine flap, so the master answers it without
// scoring the machine's health.
type CapacityQuery struct {
	Machine int32 // dense machine ID
	Repair  bool
	Seq     uint64
}

// CapacityEntry is one absolute (not delta) capacity record in a
// CapacitySync.
type CapacityEntry struct {
	App    string
	UnitID int
	Size   resource.Vector
	Count  int
}

// CapacitySync answers a CapacityQuery with the machine's full granted
// capacity table.
type CapacitySync struct {
	Machine int32 // dense machine ID
	Entries []CapacityEntry
	// Epoch fences syncs from a deposed primary (see GrantUpdate.Epoch).
	Epoch int
	Seq   uint64
}

// WireSize implements transport.Sizer.
func (m CapacitySync) WireSize() int {
	return headerBytes + 4 + len(m.Entries)*unitBytes
}

// ---------------------------------------------------------------------------
// Submission gateway <-> FuxiMaster
// ---------------------------------------------------------------------------

// JobAdmit hands one job the submission gateway dequeued over to the
// primary FuxiMaster — the paper's "job submission" step (§3.1 step 1)
// fronted by multi-tenant admission control. The message is idempotent by
// JobID: the gateway re-sends it until an ack lands (the first attempt may
// have died with a deposed primary), and the master answers every copy, so
// admission survives master failover without being applied twice — the
// gateway's job state machine fires the registration exactly once.
type JobAdmit struct {
	JobID  string
	Tenant string
	// Class is the gateway priority class (0 service, 1 batch); QuotaGroup
	// is the scheduler quota group the tenant maps onto.
	Class      uint8
	QuotaGroup string
	Seq        uint64
}

// JobAdmitAck confirms a JobAdmit. Epoch carries the answering primary's
// election epoch so the gateway can observe successions.
type JobAdmitAck struct {
	JobID string
	Epoch int
	Seq   uint64
}

// GatewayEndpoint is the transport endpoint of the multi-tenant submission
// gateway. A newly-promoted primary also sends its MasterHello here so the
// gateway replays queued-but-unacknowledged admissions immediately instead
// of waiting out a retry period.
const GatewayEndpoint = "gateway"

// BadMachineReport escalates a job-level blacklist verdict to FuxiMaster
// (paper §4.3.2: "Among different jobs, FuxiMaster will turn this machine
// into disabled mode if a same machine is marked bad by different
// JobMasters").
type BadMachineReport struct {
	App     string
	Machine int32 // dense machine ID
	Seq     uint64
}

// MasterEndpoint is the stable logical transport endpoint of the primary
// FuxiMaster; whichever hot-standby process holds the lock registers it.
const MasterEndpoint = "fuximaster"

// AgentEndpoint names the FuxiAgent endpoint for a machine.
func AgentEndpoint(machine string) string { return "agent:" + machine }

// ---------------------------------------------------------------------------
// Application master <-> FuxiAgent
// ---------------------------------------------------------------------------

// WorkPlan asks an agent to start one worker process inside a granted
// container: binary package, limits and startup parameters in the paper; we
// carry the identifiers the simulation needs.
type WorkPlan struct {
	App      string
	UnitID   int
	WorkerID string
	Size     resource.Vector
	Seq      uint64
}

// StopWorker asks an agent to terminate a worker.
type StopWorker struct {
	App      string
	WorkerID string
	Seq      uint64
}

// WorkerStatus reports a worker's state to its application master.
type WorkerStatus struct {
	Machine  string
	App      string
	WorkerID string
	State    WorkerState
	// FailureDetail is set for failed workers (paper: "instance failure
	// details are encapsulated in the reported status for the sake of easy
	// fault diagnosis").
	FailureDetail string
	Seq           uint64
}

// WorkerListRequest is sent by a restarting FuxiAgent to application masters
// to learn the full worker list it should be running (agent failover).
type WorkerListRequest struct {
	Machine string
	Seq     uint64
}

// WorkerListReply answers with all workers the application expects on the
// machine.
type WorkerListReply struct {
	App     string
	Workers []WorkPlan
	Seq     uint64
}

// WorkerState enumerates the lifecycle of a worker process.
type WorkerState int

const (
	// WorkerStarting is assigned until the process reports in.
	WorkerStarting WorkerState = iota
	// WorkerRunning processes are executing task instances.
	WorkerRunning
	// WorkerFinished workers exited cleanly.
	WorkerFinished
	// WorkerFailed workers crashed or were killed by enforcement.
	WorkerFailed
)

func (s WorkerState) String() string {
	switch s {
	case WorkerStarting:
		return "starting"
	case WorkerRunning:
		return "running"
	case WorkerFinished:
		return "finished"
	case WorkerFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// ---------------------------------------------------------------------------
// Wire sizes (approximate, for the protocol-overhead ablation)
// ---------------------------------------------------------------------------

const (
	headerBytes   = 24
	hintBytes     = 24
	unitBytes     = 48
	perEntryBytes = 16
)

// WireSize implements transport.Sizer.
func (m RegisterApp) WireSize() int {
	return headerBytes + len(m.App) + len(m.QuotaGroup) + len(m.Units)*unitBytes
}

// WireSize implements transport.Sizer.
func (m DemandUpdate) WireSize() int {
	return headerBytes + len(m.App) + len(m.Deltas)*hintBytes
}

// WireSize implements transport.Sizer.
func (m GrantReturn) WireSize() int { return headerBytes + len(m.App) + 4 + 8 }

// WireSize implements transport.Sizer.
func (m GrantReturnBatch) WireSize() int {
	return headerBytes + len(m.App) + len(m.Returns)*perEntryBytes
}

// WireSize implements transport.Sizer.
func (m CapacityDelta) WireSize() int {
	return headerBytes + len(m.Entries)*unitBytes
}

// WireSize implements transport.Sizer.
func (m GrantUpdate) WireSize() int {
	return headerBytes + len(m.App) + len(m.Changes)*perEntryBytes
}

// WireSize implements transport.Sizer.
func (m FullDemandSync) WireSize() int {
	n := headerBytes + len(m.App) + len(m.Units)*unitBytes
	for _, hints := range m.Demand {
		n += len(hints) * hintBytes
	}
	for _, held := range m.Held {
		n += len(held) * perEntryBytes
	}
	return n
}

// WireSize implements transport.Sizer.
func (m AgentHeartbeat) WireSize() int {
	return headerBytes + 4 + (len(m.Allocations)+len(m.Changes))*perEntryBytes
}

// WireSize implements transport.Sizer.
func (m CapacityUpdate) WireSize() int { return headerBytes + len(m.App) + 2*perEntryBytes }

// WireSize implements transport.Sizer.
func (m JobAdmit) WireSize() int {
	return headerBytes + len(m.JobID) + len(m.Tenant) + len(m.QuotaGroup) + 1
}

// WireSize implements transport.Sizer.
func (m JobAdmitAck) WireSize() int { return headerBytes + len(m.JobID) + 8 }

// WireSize implements transport.Sizer.
func (m UnregisterAck) WireSize() int { return headerBytes + len(m.App) + 8 }

// WireSize implements transport.Sizer.
func (m WorkPlan) WireSize() int {
	return headerBytes + len(m.App) + len(m.WorkerID) + 2*perEntryBytes
}

// WireSize implements transport.Sizer.
func (m WorkerStatus) WireSize() int {
	return headerBytes + len(m.App) + len(m.WorkerID) + len(m.FailureDetail)
}
