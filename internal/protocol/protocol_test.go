package protocol

import (
	"testing"
	"testing/quick"

	"repro/internal/resource"
)

func TestSequencerMonotone(t *testing.T) {
	var s Sequencer
	if s.Current() != 0 {
		t.Errorf("initial Current = %d", s.Current())
	}
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		n := s.Next()
		if n != prev+1 {
			t.Fatalf("Next = %d after %d", n, prev)
		}
		prev = n
	}
	if s.Current() != 100 {
		t.Errorf("Current = %d, want 100", s.Current())
	}
}

func TestDedupInOrder(t *testing.T) {
	d := NewDedup()
	for i := uint64(1); i <= 5; i++ {
		if v := d.Observe("a", i); v != Accept {
			t.Fatalf("seq %d: verdict %v, want Accept", i, v)
		}
	}
	if d.Gaps() != 0 {
		t.Errorf("gaps = %d", d.Gaps())
	}
}

func TestDedupDuplicates(t *testing.T) {
	d := NewDedup()
	d.Observe("a", 1)
	d.Observe("a", 2)
	if v := d.Observe("a", 2); v != Duplicate {
		t.Errorf("replay verdict = %v", v)
	}
	if v := d.Observe("a", 1); v != Duplicate {
		t.Errorf("old replay verdict = %v", v)
	}
	if v := d.Observe("a", 3); v != Accept {
		t.Errorf("next after replays = %v", v)
	}
}

func TestDedupGap(t *testing.T) {
	d := NewDedup()
	d.Observe("a", 1)
	if v := d.Observe("a", 5); v != Gap {
		t.Errorf("gap verdict = %v", v)
	}
	if d.Gaps() != 1 {
		t.Errorf("gaps = %d", d.Gaps())
	}
	// 2..4 arrive late: they're now duplicates (already superseded).
	if v := d.Observe("a", 3); v != Duplicate {
		t.Errorf("late verdict = %v", v)
	}
	if v := d.Observe("a", 6); v != Accept {
		t.Errorf("resume verdict = %v", v)
	}
}

func TestDedupSendersIndependent(t *testing.T) {
	d := NewDedup()
	d.Observe("a", 1)
	if v := d.Observe("b", 1); v != Accept {
		t.Errorf("other sender verdict = %v", v)
	}
}

func TestDedupReset(t *testing.T) {
	d := NewDedup()
	d.Observe("a", 10)
	d.Reset("a")
	if v := d.Observe("a", 1); v != Accept {
		t.Errorf("after reset verdict = %v", v)
	}
	d.ResetTo("a", 50)
	if v := d.Observe("a", 50); v != Duplicate {
		t.Errorf("at mark = %v", v)
	}
	if v := d.Observe("a", 51); v != Accept {
		t.Errorf("past mark = %v", v)
	}
}

func TestPropDedupExactlyOnce(t *testing.T) {
	// Any shuffled, duplicated delivery of 1..n yields exactly n-k Accepts
	// + Gaps combined never more than n, and never accepts the same seq
	// twice.
	f := func(perm []uint8) bool {
		d := NewDedup()
		applied := map[uint64]bool{}
		for _, p := range perm {
			seq := uint64(p%32) + 1
			v := d.Observe("s", seq)
			if v == Accept || v == Gap {
				if applied[seq] {
					return false // double-apply
				}
				applied[seq] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkerStateString(t *testing.T) {
	cases := map[WorkerState]string{
		WorkerStarting: "starting",
		WorkerRunning:  "running",
		WorkerFinished: "finished",
		WorkerFailed:   "failed",
		WorkerState(9): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestWireSizesPositiveAndProportional(t *testing.T) {
	small := DemandUpdate{App: "a", Deltas: []resource.LocalityHint{{}}}
	big := DemandUpdate{App: "a", Deltas: make([]resource.LocalityHint, 100)}
	if small.WireSize() <= 0 {
		t.Error("non-positive wire size")
	}
	if big.WireSize() <= small.WireSize() {
		t.Error("wire size not proportional to payload")
	}

	full := FullDemandSync{
		App:    "a",
		Units:  []resource.ScheduleUnit{{ID: 1}},
		Demand: map[int][]resource.LocalityHint{1: make([]resource.LocalityHint, 10)},
		Held:   map[int]map[int32]int{1: {0: 2, 1: 3}},
	}
	if full.WireSize() <= small.WireSize() {
		t.Error("full sync should outweigh a small delta")
	}

	msgs := []interface{ WireSize() int }{
		RegisterApp{App: "a"},
		GrantReturn{App: "a", Machine: 0},
		GrantUpdate{App: "a", Changes: []MachineDelta{{Machine: 0, Delta: 1}}},
		AgentHeartbeat{Machine: 0, Allocations: []AllocDelta{{App: "a", UnitID: 1, Count: 2}}},
		CapacityUpdate{App: "a"},
		WorkPlan{App: "a", WorkerID: "w"},
		WorkerStatus{App: "a", WorkerID: "w"},
	}
	for i, m := range msgs {
		if m.WireSize() <= 0 {
			t.Errorf("msg %d: non-positive wire size", i)
		}
	}
}
