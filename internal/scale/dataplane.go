package scale

// Dataplane mode: the paper's data plane running on the scheduled cluster.
// Instead of synthetic hold/return churn, the workload is real jobs built
// from the data-plane packages, submitted through the multi-tenant gateway
// and executed as staged application masters over the usual master/agent
// stack:
//
//   - GraySort jobs (§5.3): a map → sort → merge chain whose stage widths
//     come from the input file's Pangu chunk count and whose simulated I/O
//     durations come from the graysort hardware phase model. Map demand is
//     pinned to the chunks' replica machines (the data-locality signal),
//     sort demand to wherever map actually ran (container-reuse locality),
//     and a sampled subset of jobs re-runs the real graysort kernels —
//     generate, range-partition, per-run sort, k-way merge — to verify one
//     partition's output end to end.
//   - DAG pipelines: the Figure 6 diamond (T1 → {T2, T3} → T4) expressed as
//     an internal/job description, T1 reading a Pangu file with replica
//     locality and the inner stages demanding the racks their upstreams
//     executed on. Stages are released incrementally: a task's demand is
//     sent only when every upstream finished (§3.1's incremental
//     scheduling).
//   - Streamline service jobs: long-running residents in the gateway's
//     service class, sharing the cluster with the batch jobs above and
//     periodically running real streamline map/reduce rounds (hash
//     word count and a range-partitioned sort) whose conservation
//     properties are asserted.
//
// The application-level measurements — job makespan, locality hit rate,
// MB shuffled versus read locally, per-class admission and demand-to-grant
// percentiles with SLO attainment — land in the `dataplane` section of
// BENCH_scale.json next to the control-plane decision metrics, with CI
// budget gates like the existing alloc/message ones.

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/appmaster"
	"repro/internal/gateway"
	"repro/internal/graysort"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/pangu"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/streamline"
)

// DefaultDataplaneConfig is the paper-scale data-plane run: 5,000 machines
// executing GraySort chains, Figure 6 diamonds and long-running service
// residents concurrently, with background machine failovers and the
// invariant checker attached.
func DefaultDataplaneConfig() Config {
	c := DefaultConfig()
	c.Apps = 0
	c.UnitsPerApp = 1 // unused by dataplane jobs; kept positive for validation
	c.Dataplane = true
	c.GraySortJobs = 12
	c.GraySortDataMB = 16 * 1024 // 64 chunks -> 64-wide map/sort/merge stages
	c.DAGJobs = 12
	c.ServiceJobs = 20
	c.ServiceWorkers = 4
	c.ServiceOps = 10
	c.ServiceOpEvery = 3 * sim.Second
	c.VerifyRecords = 2048
	c.VerifySampleEvery = 4
	c.ServiceSLOMS = 100
	c.BatchSLOMS = 5000
	c.ArrivalWindow = 30 * sim.Second
	c.HoldTime = 0
	c.FailoverEvery = 5 * sim.Second
	c.FailoverDowntime = 8 * sim.Second
	c.FullSyncEvery = 30 * sim.Second
	c.CheckInvariants = true
	c.Horizon = 10 * sim.Minute
	return c
}

// SmokeDataplaneConfig is the CI-sized data-plane run: 100 machines, small
// GraySort/DAG/service mix, full kernel verification on every sort job.
func SmokeDataplaneConfig() Config {
	c := DefaultDataplaneConfig()
	c.Racks, c.MachinesPerRack = 10, 10
	c.GraySortJobs = 4
	c.GraySortDataMB = 2048 // 8 chunks
	c.DAGJobs = 4
	c.ServiceJobs = 6
	c.ServiceWorkers = 2
	c.ServiceOps = 5
	c.ServiceOpEvery = 2 * sim.Second
	c.VerifyRecords = 512
	c.VerifySampleEvery = 1
	c.ArrivalWindow = 15 * sim.Second
	c.Horizon = 4 * sim.Minute
	return c
}

// dpKind tags a data-plane job's workload family.
type dpKind int

const (
	dpGraySort dpKind = iota
	dpDAG
	dpService
)

// dpLocality is how a stage derives its locality demand.
type dpLocality int

const (
	locCluster          dpLocality = iota // no placement preference
	locChunks                             // replica machines of the stage's input file
	locUpstreamMachines                   // exactly where the upstream stage executed
	locUpstreamRacks                      // the racks covering upstream placements
)

// dpStage is one task of a data-plane job, scheduled as one ScheduleUnit
// and executed in a single wave of `need` containers.
type dpStage struct {
	name     string
	unitID   int
	need     int
	size     resource.Vector
	duration sim.Time
	locality dpLocality
	// inputMB is the task-to-task volume flowing into this stage (zero for
	// stages reading only from the DFS); it feeds the shuffle accounting.
	inputMB float64

	upstreams          int // not-yet-finished upstream stages
	started, finished  bool
	executed, inFlight int

	// Deterministic locality demand: hint targets in first-seen order, and
	// the machine/rack sets that classify a grant as machine- or rack-local.
	hintMachines   []int32
	hintCounts     []int
	hintRacks      []int32
	hintRackCounts []int
	wantM          map[int32]bool
	wantR          map[int32]bool

	// Execution placements in first-seen order, consumed by downstream
	// stages for locality demand and shuffle accounting.
	placeOrder []int32
	placeCount map[int32]int

	// Upstream placement snapshot (filled when the stage becomes ready).
	srcOrder  []int32
	srcCounts []int
	srcTotal  int
}

// dpJob is one data-plane job: a DAG of stages behind one application
// master, admitted through the gateway.
type dpJob struct {
	h     *harness
	id    string
	kind  dpKind
	class gateway.Class
	prio  int

	desc   *job.Description
	order  []string
	stages map[string]*dpStage
	am     *appmaster.AM

	dataMB    float64
	inputFile string
	width     int // graysort partition width (map/sort/merge stage width)

	submitAt   sim.Time
	pendingReq []sim.Time
	remaining  int
	done       bool

	svcOps int // remaining service operations
}

// dpState is the harness's data-plane bookkeeping.
type dpState struct {
	fs    *pangu.FS
	jobs  []*dpJob
	byID  map[string]*dpJob
	units int

	makespan  *metrics.Histogram
	admission [gateway.NumClasses]*metrics.Histogram
	d2g       [gateway.NumClasses]*metrics.Histogram
	d2gN      [gateway.NumClasses]int
	d2gOK     [gateway.NumClasses]int
	jobsIn    [gateway.NumClasses]int

	locMachine, locRack, locRemote uint64
	shuffledMB, localMB            float64

	verified, verifyFail int
	svcOpsRun, svcOpFail int
	completedJobs        int
}

// DPClassStats is one priority class's data-plane view: admission and
// demand-to-grant latency percentiles (virtual ms) and the fraction of
// demand-to-grant observations inside the class SLO.
type DPClassStats struct {
	Jobs               int     `json:"jobs"`
	AdmissionP50MS     float64 `json:"admission_p50_ms"`
	AdmissionP99MS     float64 `json:"admission_p99_ms"`
	AdmissionMaxMS     float64 `json:"admission_max_ms"`
	DemandToGrantP50MS float64 `json:"demand_to_grant_p50_ms"`
	DemandToGrantP99MS float64 `json:"demand_to_grant_p99_ms"`
	DemandToGrantMaxMS float64 `json:"demand_to_grant_max_ms"`
	SLOMS              float64 `json:"slo_ms"`
	SLOAttainedPct     float64 `json:"slo_attained_pct"`
}

// DataplaneStats is the `dataplane` section's application-level block.
type DataplaneStats struct {
	GraySortJobs  int `json:"graysort_jobs"`
	DAGJobs       int `json:"dag_jobs"`
	ServiceJobs   int `json:"service_jobs"`
	CompletedJobs int `json:"completed_jobs"`

	// Batch-job makespan, submission to completion, in virtual ms.
	MakespanMeanMS float64 `json:"makespan_mean_ms"`
	MakespanP50MS  float64 `json:"makespan_p50_ms"`
	MakespanP99MS  float64 `json:"makespan_p99_ms"`
	MakespanMaxMS  float64 `json:"makespan_max_ms"`

	// Locality classification of every grant to a locality-tracked stage:
	// on a wanted machine (a chunk replica or an upstream's machine), in a
	// wanted rack, or remote. HitRatePct = (machine + rack) / total.
	LocalityMachineGrants uint64  `json:"locality_machine_grants"`
	LocalityRackGrants    uint64  `json:"locality_rack_grants"`
	LocalityRemoteGrants  uint64  `json:"locality_remote_grants"`
	LocalityHitRatePct    float64 `json:"locality_hit_rate_pct"`

	// Task-to-task volume that crossed machines versus read on the machine
	// that produced it.
	ShuffledMB float64 `json:"shuffled_mb"`
	LocalMB    float64 `json:"local_mb"`

	// Sampled kernel verification (real graysort partition/sort/merge).
	VerifiedPartitions int `json:"verified_partitions"`
	VerifyFailures     int `json:"verify_failures"`

	// Streamline service operations executed (and conservation failures).
	ServiceOpsRun     int `json:"service_ops_run"`
	ServiceOpFailures int `json:"service_op_failures"`

	Service DPClassStats `json:"service"`
	Batch   DPClassStats `json:"batch"`
}

func newDPState(h *harness) *dpState {
	dp := &dpState{
		fs:       pangu.New(h.top, rand.New(rand.NewSource(h.cfg.Seed+2))),
		byID:     make(map[string]*dpJob),
		makespan: h.reg.Histogram("scale.dp_makespan_ms"),
	}
	for cl := gateway.Class(0); cl < gateway.NumClasses; cl++ {
		dp.admission[cl] = h.reg.Histogram("scale.dp_admission_ms." + cl.QuotaGroup())
		dp.d2g[cl] = h.reg.Histogram("scale.dp_d2g_ms." + cl.QuotaGroup())
	}
	return dp
}

func (h *harness) classSLOMS(c gateway.Class) float64 {
	if c == gateway.ClassService {
		return h.cfg.ServiceSLOMS
	}
	return h.cfg.BatchSLOMS
}

// scheduleDataplane plans every job up front (Pangu files and stage graphs
// are part of the seeded workload, independent of scheduling timing) and
// submits them through the gateway spread over ArrivalWindow, classes
// interleaved so service and batch arrive mixed.
func (h *harness) scheduleDataplane() error {
	cfg := h.cfg
	var plans []*dpJob
	for i := 0; i < maxInt(cfg.ServiceJobs, maxInt(cfg.GraySortJobs, cfg.DAGJobs)); i++ {
		if i < cfg.ServiceJobs {
			p, err := h.planService(i)
			if err != nil {
				return err
			}
			plans = append(plans, p)
		}
		if i < cfg.GraySortJobs {
			p, err := h.planGraySort(i)
			if err != nil {
				return err
			}
			plans = append(plans, p)
		}
		if i < cfg.DAGJobs {
			p, err := h.planDAG(i)
			if err != nil {
				return err
			}
			plans = append(plans, p)
		}
	}
	if len(plans) == 0 {
		return fmt.Errorf("scale: dataplane mode needs at least one job")
	}
	h.dp.jobs = plans
	for _, p := range plans {
		h.dp.byID[p.id] = p
		h.dp.jobsIn[p.class]++
		h.dp.units += len(p.order)
	}
	start := h.eng.Now()
	for i, p := range plans {
		p := p
		at := start + sim.Time(int64(cfg.ArrivalWindow)*int64(i)/int64(len(plans)))
		h.eng.At(at, func() {
			p.submitAt = h.eng.Now()
			h.gw.Submit(gateway.Job{ID: p.id, Tenant: "dp-" + p.id, Class: p.class})
			h.gwSubmitted++
		})
	}
	return nil
}

// planGraySort builds one GraySort job: a map → sort → merge chain over a
// Pangu input file, stage width = chunk count, durations from the hardware
// phase model scaled to the job's slice of the cluster.
func (h *harness) planGraySort(i int) (*dpJob, error) {
	cfg := h.cfg
	id := "gs-" + pad4(i)
	dataMB := cfg.GraySortDataMB
	if dataMB <= 0 {
		dataMB = pangu.DefaultChunkSizeMB
	}
	file := "pangu://" + id + "/input"
	f, err := h.dp.fs.Create(file, dataMB)
	if err != nil {
		return nil, err
	}
	w := len(f.Chunks)
	hw := graysort.HardwareModel(
		graysort.ClusterSpec{Nodes: w, DisksPerNode: 12, DiskMBps: 100, NetMBps: 250},
		graysort.SortSpec{DataTB: float64(dataMB) / 1e6},
	)
	mapMS := clampMS(int64(hw.ReadSortSec / 2 * 1000))
	mergeMS := clampMS(int64((hw.ShuffleSec + hw.MergeWriteSec) * 1000))
	desc := &job.Description{
		Name: id,
		Tasks: map[string]job.TaskSpec{
			"map":   {Instances: w, CPUMilli: 1000, MemoryMB: 3072, DurationMS: mapMS},
			"sort":  {Instances: w, CPUMilli: 1000, MemoryMB: 4096, DurationMS: mapMS},
			"merge": {Instances: w, CPUMilli: 1000, MemoryMB: 4096, DurationMS: mergeMS},
		},
		Pipes: []job.Pipe{
			{Source: job.AccessPoint{FilePattern: file}, Destination: job.AccessPoint{AccessPoint: "map:input"}},
			{Source: job.AccessPoint{AccessPoint: "map:spill"}, Destination: job.AccessPoint{AccessPoint: "sort:spill"}},
			{Source: job.AccessPoint{AccessPoint: "sort:runs"}, Destination: job.AccessPoint{AccessPoint: "merge:runs"}},
			{Source: job.AccessPoint{AccessPoint: "merge:out"}, Destination: job.AccessPoint{FilePattern: "pangu://" + id + "/output"}},
		},
	}
	j, err := h.newDPJob(id, dpGraySort, gateway.ClassBatch, desc, float64(dataMB), file)
	if err != nil {
		return nil, err
	}
	j.width = w
	j.stages["sort"].locality = locUpstreamMachines
	return j, nil
}

// planDAG builds one Figure 6 diamond: T1 reads a Pangu file, T2/T3 fan out
// with rack affinity to T1's placements, T4 joins them.
func (h *harness) planDAG(i int) (*dpJob, error) {
	id := "dag-" + pad4(i)
	const t1Width = 12
	dataMB := int64(t1Width * pangu.DefaultChunkSizeMB)
	file := "pangu://" + id + "/input"
	if _, err := h.dp.fs.Create(file, dataMB); err != nil {
		return nil, err
	}
	desc := &job.Description{
		Name: id,
		Tasks: map[string]job.TaskSpec{
			"T1": {Instances: t1Width, CPUMilli: 1000, MemoryMB: 2048, DurationMS: 3000},
			"T2": {Instances: 6, CPUMilli: 1000, MemoryMB: 3072, DurationMS: 4000},
			"T3": {Instances: 6, CPUMilli: 500, MemoryMB: 2048, DurationMS: 5000},
			"T4": {Instances: 2, CPUMilli: 2000, MemoryMB: 8192, DurationMS: 6000},
		},
		Pipes: []job.Pipe{
			{Source: job.AccessPoint{FilePattern: file}, Destination: job.AccessPoint{AccessPoint: "T1:input"}},
			{Source: job.AccessPoint{AccessPoint: "T1:toT2"}, Destination: job.AccessPoint{AccessPoint: "T2:fromT1"}},
			{Source: job.AccessPoint{AccessPoint: "T1:toT3"}, Destination: job.AccessPoint{AccessPoint: "T3:fromT1"}},
			{Source: job.AccessPoint{AccessPoint: "T2:toT4"}, Destination: job.AccessPoint{AccessPoint: "T4:fromT2"}},
			{Source: job.AccessPoint{AccessPoint: "T3:toT4"}, Destination: job.AccessPoint{AccessPoint: "T4:fromT3"}},
			{Source: job.AccessPoint{AccessPoint: "T4:output"}, Destination: job.AccessPoint{FilePattern: "pangu://" + id + "/output"}},
		},
	}
	return h.newDPJob(id, dpDAG, gateway.ClassBatch, desc, float64(dataMB), file)
}

// planService builds one long-running service resident: a single unit of
// ServiceWorkers containers held for the job's configured lifetime, running
// a streamline operation round every ServiceOpEvery.
func (h *harness) planService(i int) (*dpJob, error) {
	cfg := h.cfg
	id := "svc-" + pad4(i)
	lifeMS := int64(cfg.ServiceOps)*int64(cfg.ServiceOpEvery/sim.Millisecond) + 2000
	desc := &job.Description{
		Name: id,
		Tasks: map[string]job.TaskSpec{
			"serve": {Instances: maxInt(cfg.ServiceWorkers, 1), CPUMilli: 2000, MemoryMB: 4096, DurationMS: clampMS(lifeMS)},
		},
	}
	j, err := h.newDPJob(id, dpService, gateway.ClassService, desc, 0, "")
	if err != nil {
		return nil, err
	}
	j.svcOps = cfg.ServiceOps
	return j, nil
}

// newDPJob turns a job description into staged execution state. Stage input
// volumes follow a pass-through model: a root stage's volume is the job's
// data size, every stage forwards its input split evenly across its
// downstream pipes.
func (h *harness) newDPJob(id string, kind dpKind, class gateway.Class, desc *job.Description, dataMB float64, inputFile string) (*dpJob, error) {
	if err := desc.Validate(); err != nil {
		return nil, fmt.Errorf("scale: dataplane job %s: %w", id, err)
	}
	order, err := desc.TopologicalOrder()
	if err != nil {
		return nil, fmt.Errorf("scale: dataplane job %s: %w", id, err)
	}
	prio := 3
	if class == gateway.ClassService {
		prio = 1
	}
	j := &dpJob{
		h: h, id: id, kind: kind, class: class, prio: prio,
		desc: desc, order: order, stages: make(map[string]*dpStage, len(order)),
		dataMB: dataMB, inputFile: inputFile,
		pendingReq: make([]sim.Time, len(order)+1),
		remaining:  len(order),
	}
	inMB := make(map[string]float64, len(order))
	for idx, t := range order {
		spec := desc.Tasks[t]
		st := &dpStage{
			name:       t,
			unitID:     idx + 1,
			need:       spec.Instances,
			size:       resource.New(spec.CPUMilli, spec.MemoryMB),
			duration:   sim.Time(spec.DurationMS) * sim.Millisecond,
			upstreams:  len(desc.Upstream(t)),
			placeCount: make(map[int32]int),
		}
		if st.upstreams == 0 {
			inMB[t] = dataMB
			if inputFile != "" && len(desc.InputFiles(t)) > 0 {
				st.locality = locChunks
			}
		} else {
			st.locality = locUpstreamRacks
			for _, up := range desc.Upstream(t) {
				st.inputMB += inMB[up] / float64(len(desc.Downstream(up)))
			}
			inMB[t] = st.inputMB
		}
		j.stages[t] = st
	}
	// Chunk-locality demand is known at plan time.
	for _, t := range order {
		if st := j.stages[t]; st.locality == locChunks {
			j.prepareChunkLocality(st)
		}
	}
	return j, nil
}

// prepareChunkLocality derives a root stage's locality demand from its
// input file's chunk placement: one machine-level hint per chunk on the
// chunk's first replica, with every replica (and its rack) counting as a
// locality hit.
func (j *dpJob) prepareChunkLocality(st *dpStage) {
	h := j.h
	st.wantM = make(map[int32]bool)
	st.wantR = make(map[int32]bool)
	counts := make(map[int32]int)
	f, err := j.h.dp.fs.Open(j.inputFile)
	if err != nil {
		st.locality = locCluster
		return
	}
	for _, c := range f.Chunks {
		for ri, rep := range c.Replicas {
			m := h.top.MachineID(rep)
			if m < 0 {
				continue
			}
			st.wantM[m] = true
			st.wantR[h.top.RackIDOf(m)] = true
			if ri == 0 {
				if counts[m] == 0 {
					st.hintMachines = append(st.hintMachines, m)
				}
				counts[m]++
			}
		}
	}
	st.hintCounts = make([]int, len(st.hintMachines))
	for i, m := range st.hintMachines {
		st.hintCounts[i] = counts[m]
	}
}

// prepareUpstreamLocality derives a ready stage's locality demand and its
// shuffle-accounting source from where the upstream stages actually ran.
func (j *dpJob) prepareUpstreamLocality(st *dpStage) {
	h := j.h
	srcCount := make(map[int32]int)
	for _, up := range j.desc.Upstream(st.name) {
		us := j.stages[up]
		for _, m := range us.placeOrder {
			if srcCount[m] == 0 {
				st.srcOrder = append(st.srcOrder, m)
			}
			srcCount[m] += us.placeCount[m]
			st.srcTotal += us.placeCount[m]
		}
	}
	st.srcCounts = make([]int, len(st.srcOrder))
	for i, m := range st.srcOrder {
		st.srcCounts[i] = srcCount[m]
	}
	if st.locality == locCluster || st.srcTotal == 0 {
		return
	}
	st.wantM = make(map[int32]bool, len(st.srcOrder))
	st.wantR = make(map[int32]bool)
	for _, m := range st.srcOrder {
		st.wantM[m] = true
		st.wantR[h.top.RackIDOf(m)] = true
	}
	switch st.locality {
	case locUpstreamMachines:
		// Demand exactly the upstream placement distribution (container
		// reuse: the sort stage wants the machines holding map output).
		st.hintMachines = st.srcOrder
		st.hintCounts = st.srcCounts
	case locUpstreamRacks:
		var racks []int32
		seen := make(map[int32]bool)
		for _, m := range st.srcOrder {
			r := h.top.RackIDOf(m)
			if !seen[r] {
				seen[r] = true
				racks = append(racks, r)
			}
		}
		st.hintRacks = racks
		st.hintRackCounts = make([]int, len(racks))
		for i := 0; i < st.need; i++ {
			st.hintRackCounts[i%len(racks)]++
		}
	}
}

// hintsFor builds the stage's demand hints, machine preferences first, rack
// preferences next, any remainder cluster-wide.
func (j *dpJob) hintsFor(st *dpStage) []resource.LocalityHint {
	h := j.h
	var hints []resource.LocalityHint
	rest := st.need
	for i, m := range st.hintMachines {
		if rest <= 0 {
			break
		}
		c := minInt(st.hintCounts[i], rest)
		if c <= 0 {
			continue
		}
		hints = append(hints, resource.LocalityHint{
			Type: resource.LocalityMachine, Value: h.top.MachineName(m), Count: c,
		})
		rest -= c
	}
	for i, r := range st.hintRacks {
		if rest <= 0 {
			break
		}
		c := minInt(st.hintRackCounts[i], rest)
		if c <= 0 {
			continue
		}
		hints = append(hints, resource.LocalityHint{
			Type: resource.LocalityRack, Value: h.top.RackName(r), Count: c,
		})
		rest -= c
	}
	if rest > 0 {
		hints = append(hints, resource.LocalityHint{Type: resource.LocalityCluster, Count: rest})
	}
	return hints
}

// spawnDataplaneJob is the gateway's OnRegistered callback in dataplane
// mode: boot the job's application master and release its root stages.
func (h *harness) spawnDataplaneJob(gj gateway.Job) {
	j := h.dp.byID[gj.ID]
	if j == nil {
		return
	}
	h.dp.admission[j.class].Observe(float64(h.eng.Now()-j.submitAt) / float64(sim.Millisecond))
	units := make([]resource.ScheduleUnit, 0, len(j.order))
	for _, t := range j.order {
		st := j.stages[t]
		units = append(units, resource.ScheduleUnit{
			ID: st.unitID, Priority: j.prio, Size: st.size, MaxCount: st.need,
		})
	}
	fullSync := h.cfg.FullSyncEvery
	if fullSync == 0 {
		fullSync = 10 * sim.Second
	}
	j.am = appmaster.New(appmaster.Config{
		App: j.id, QuotaGroup: gj.Class.QuotaGroup(), Units: units,
		FullSyncInterval: fullSync,
	}, h.eng, h.net, h.top, appmaster.Callbacks{
		OnGrant:  j.onGrant,
		OnRevoke: j.onRevoke,
	})
	// Root stages demand after the registration round-trip settles; inner
	// stages are released incrementally as upstreams finish.
	h.eng.PostFunc(sim.Millisecond, func() {
		for _, t := range j.order {
			if st := j.stages[t]; st.upstreams == 0 && !st.started {
				j.startStage(st)
			}
		}
	})
}

func (j *dpJob) startStage(st *dpStage) {
	st.started = true
	j.pendingReq[st.unitID] = j.h.eng.Now()
	j.am.Request(st.unitID, j.hintsFor(st)...)
	if j.kind == dpService && j.svcOps > 0 {
		j.h.eng.PostFunc(j.h.cfg.ServiceOpEvery, j.svcTick)
	}
}

func (j *dpJob) stageAt(unitID int) *dpStage {
	if unitID < 1 || unitID > len(j.order) {
		return nil
	}
	return j.stages[j.order[unitID-1]]
}

func (j *dpJob) onGrant(unitID int, machine int32, count int) {
	h := j.h
	h.grants += uint64(count)
	if h.pauseAt != 0 && h.eng.Now()-h.pauseAt > sim.Millisecond {
		h.schedPause.Observe(float64(h.eng.Now()-h.pauseAt) / float64(sim.Millisecond))
		h.pauseAt = 0
	}
	st := j.stageAt(unitID)
	if st == nil || j.done {
		return
	}
	if at := j.pendingReq[unitID]; at != 0 {
		ms := float64(h.eng.Now()-at) / float64(sim.Millisecond)
		h.latency.Observe(ms)
		al := h.appLat[j.id]
		al.SumMS += ms
		al.N++
		if ms > al.MaxMS {
			al.MaxMS = ms
		}
		h.appLat[j.id] = al
		dp := h.dp
		dp.d2g[j.class].Observe(ms)
		dp.d2gN[j.class]++
		if ms <= h.classSLOMS(j.class) {
			dp.d2gOK[j.class]++
		}
		j.pendingReq[unitID] = 0
	}
	// One-wave execution: accept what the stage still needs, hand back the
	// rest immediately (a late regrant racing a revocation's re-demand).
	use := minInt(count, st.need-st.executed-st.inFlight)
	if excess := count - use; excess > 0 {
		j.am.ReturnContainers(unitID, machine, excess)
	}
	if use <= 0 {
		return
	}
	st.inFlight += use
	if st.locality != locCluster && st.wantM != nil {
		dp := h.dp
		switch {
		case st.wantM[machine]:
			dp.locMachine += uint64(use)
		case st.wantR[h.top.RackIDOf(machine)]:
			dp.locRack += uint64(use)
		default:
			dp.locRemote += uint64(use)
		}
	}
	h.eng.PostFunc(st.duration, func() { j.holdDone(st, machine, use) })
}

// holdDone completes one grant's work slice: the containers return to the
// master and the stage's executed count advances. Containers revoked
// mid-hold were already re-demanded by onRevoke, so the return is clamped
// to what the application master still holds.
func (j *dpJob) holdDone(st *dpStage, machine int32, count int) {
	h := j.h
	if j.done {
		return
	}
	if held := j.am.Held(st.unitID, machine); held < count {
		count = held
	}
	if count <= 0 {
		return
	}
	j.am.ReturnContainers(st.unitID, machine, count)
	st.inFlight -= count
	if st.inFlight < 0 {
		st.inFlight = 0
	}
	if st.finished {
		return
	}
	if st.placeCount[machine] == 0 {
		st.placeOrder = append(st.placeOrder, machine)
	}
	st.placeCount[machine] += count
	h.dp.accountRead(st, machine, count)
	st.executed += count
	if st.executed >= st.need {
		st.finished = true
		j.stageDone(st)
	}
}

// accountRead attributes the stage's share of task-to-task input volume:
// bytes whose upstream producer ran on the same machine are local reads,
// the rest crossed the network (the shuffle).
func (dp *dpState) accountRead(st *dpStage, machine int32, count int) {
	if st.inputMB <= 0 || st.srcTotal == 0 {
		return
	}
	share := st.inputMB * float64(count) / float64(st.need)
	for i, m := range st.srcOrder {
		mb := share * float64(st.srcCounts[i]) / float64(st.srcTotal)
		if m == machine {
			dp.localMB += mb
		} else {
			dp.shuffledMB += mb
		}
	}
}

func (j *dpJob) stageDone(st *dpStage) {
	j.remaining--
	for _, dn := range j.desc.Downstream(st.name) {
		ds := j.stages[dn]
		ds.upstreams--
		if ds.upstreams == 0 && !ds.started {
			j.prepareUpstreamLocality(ds)
			j.startStage(ds)
		}
	}
	if j.remaining == 0 {
		j.complete()
	}
}

func (j *dpJob) complete() {
	h := j.h
	j.done = true
	if j.kind != dpService {
		h.dp.makespan.Observe(float64(h.eng.Now()-j.submitAt) / float64(sim.Millisecond))
	}
	if j.kind == dpGraySort && h.cfg.VerifyRecords > 0 {
		every := maxInt(h.cfg.VerifySampleEvery, 1)
		if int(jobMix(j.id)%uint64(every)) == 0 {
			h.dp.verifyGraySort(j, h.cfg.VerifyRecords)
		}
	}
	j.am.Unregister()
	h.completed++
	h.names = append(h.names, j.id)
	h.gw.JobCompleted(j.id)
	h.dp.completedJobs++
}

func (j *dpJob) onRevoke(unitID int, machine int32, count int) {
	h := j.h
	h.revokes += uint64(count)
	st := j.stageAt(unitID)
	if st == nil || j.done {
		return
	}
	st.inFlight -= count
	if st.inFlight < 0 {
		st.inFlight = 0
	}
	if st.finished {
		return
	}
	// Failover took the containers mid-stage: restate the demand (paper
	// §3.1 step 7); anywhere in the cluster will do for the retry.
	if j.pendingReq[unitID] == 0 {
		j.pendingReq[unitID] = h.eng.Now()
	}
	j.am.Request(unitID, resource.LocalityHint{Type: resource.LocalityCluster, Count: count})
}

// svcTick runs one service operation and re-arms itself while the job is
// live and operations remain.
func (j *dpJob) svcTick() {
	if j.done || j.svcOps <= 0 {
		return
	}
	j.svcOps--
	j.h.dp.runServiceOp(j)
	if j.svcOps > 0 && !j.done {
		j.h.eng.PostFunc(j.h.cfg.ServiceOpEvery, j.svcTick)
	}
}

// runServiceOp executes one real streamline round, alternating between a
// hash-partitioned word count and a range-partitioned sort, and asserts
// record conservation — the service job's "request serving" is the data
// plane actually computing.
func (dp *dpState) runServiceOp(j *dpJob) {
	dp.svcOpsRun++
	mix := jobMix(j.id) + uint64(j.svcOps)*0x9e3779b97f4a7c15
	const nrec = 256
	records := make([]streamline.Record, nrec)
	x := mix
	for i := range records {
		x = x*6364136223846793005 + 1442695040888963407
		records[i] = streamline.Record{
			Key:   []byte("w" + pad4(int(x>>33%97))),
			Value: []byte{1},
		}
	}
	if mix%2 == 0 {
		dp.serviceWordCount(records)
	} else {
		dp.serviceRangeSort(records)
	}
}

// serviceWordCount: two map halves through MapSide, buckets reduced with a
// counting reducer; the counted total must equal the input record count.
func (dp *dpState) serviceWordCount(records []streamline.Record) {
	const buckets = 4
	counting := func(key []byte, values [][]byte) []streamline.Record {
		total := 0
		for _, v := range values {
			total += len(v)
		}
		return []streamline.Record{{Key: key, Value: []byte(strconv.Itoa(total))}}
	}
	half := len(records) / 2
	p1, err1 := streamline.MapSide(records[:half], buckets, nil)
	p2, err2 := streamline.MapSide(records[half:], buckets, nil)
	if err1 != nil || err2 != nil {
		dp.svcOpFail++
		return
	}
	total := 0
	for b := 0; b < buckets; b++ {
		out, err := streamline.ReduceSide([]streamline.Run{p1[b], p2[b]}, counting)
		if err != nil {
			dp.svcOpFail++
			return
		}
		for _, r := range out {
			n, _ := strconv.Atoi(string(r.Value))
			total += n
		}
	}
	if total != len(records) {
		dp.svcOpFail++
	}
}

// serviceRangeSort: Terasort in miniature — range-partition on fixed
// splits, sort each bucket, and check the concatenation is globally sorted
// with no record lost.
func (dp *dpState) serviceRangeSort(records []streamline.Record) {
	splits := [][]byte{[]byte("w0024"), []byte("w0048"), []byte("w0072")}
	parts, err := streamline.RangePartition(records, splits)
	if err != nil {
		dp.svcOpFail++
		return
	}
	var all streamline.Run
	for i := range parts {
		streamline.Sort(parts[i])
		all = append(all, parts[i]...)
	}
	if len(all) != len(records) || !all.Sorted() {
		dp.svcOpFail++
	}
}

// verifyGraySort replays the job's data movement through the real graysort
// kernels at a sampled scale: every "map task" generates records from the
// job's deterministic seed and range-partitions them across the job width;
// one sampled partition is then sorted per run and k-way merged — the
// merged output must be sorted and conserve the records routed to it.
func (dp *dpState) verifyGraySort(j *dpJob, recordsPerMap int) {
	w := j.width
	if w <= 0 {
		return
	}
	mix := jobMix(j.id)
	rng := rand.New(rand.NewSource(int64(mix)))
	bucket := int(mix >> 32 % uint64(w))
	runs := make([]graysort.Records, 0, w)
	expect := 0
	for m := 0; m < w; m++ {
		recs := graysort.Generate(rng, recordsPerMap)
		parts := graysort.Partition(recs, w)
		total := 0
		for _, p := range parts {
			total += p.Count()
		}
		if total != recs.Count() {
			dp.verifyFail++
			return
		}
		run := graysort.Sort(parts[bucket])
		expect += run.Count()
		runs = append(runs, run)
	}
	merged := graysort.Merge(runs)
	if merged.Count() != expect || !graysort.Sorted(merged) {
		dp.verifyFail++
		return
	}
	dp.verified++
}

// snapshot assembles the DataplaneStats section.
func (dp *dpState) snapshot(h *harness) *DataplaneStats {
	s := &DataplaneStats{
		GraySortJobs:          h.cfg.GraySortJobs,
		DAGJobs:               h.cfg.DAGJobs,
		ServiceJobs:           h.cfg.ServiceJobs,
		CompletedJobs:         dp.completedJobs,
		MakespanMeanMS:        dp.makespan.Mean(),
		MakespanP50MS:         dp.makespan.Quantile(0.5),
		MakespanP99MS:         dp.makespan.Quantile(0.99),
		MakespanMaxMS:         dp.makespan.Max(),
		LocalityMachineGrants: dp.locMachine,
		LocalityRackGrants:    dp.locRack,
		LocalityRemoteGrants:  dp.locRemote,
		ShuffledMB:            dp.shuffledMB,
		LocalMB:               dp.localMB,
		VerifiedPartitions:    dp.verified,
		VerifyFailures:        dp.verifyFail,
		ServiceOpsRun:         dp.svcOpsRun,
		ServiceOpFailures:     dp.svcOpFail,
	}
	if total := dp.locMachine + dp.locRack + dp.locRemote; total > 0 {
		s.LocalityHitRatePct = 100 * float64(dp.locMachine+dp.locRack) / float64(total)
	}
	s.Service = dp.classStats(h, gateway.ClassService)
	s.Batch = dp.classStats(h, gateway.ClassBatch)
	return s
}

func (dp *dpState) classStats(h *harness, c gateway.Class) DPClassStats {
	cs := DPClassStats{
		Jobs:               dp.jobsIn[c],
		AdmissionP50MS:     dp.admission[c].Quantile(0.5),
		AdmissionP99MS:     dp.admission[c].Quantile(0.99),
		AdmissionMaxMS:     dp.admission[c].Max(),
		DemandToGrantP50MS: dp.d2g[c].Quantile(0.5),
		DemandToGrantP99MS: dp.d2g[c].Quantile(0.99),
		DemandToGrantMaxMS: dp.d2g[c].Max(),
		SLOMS:              h.classSLOMS(c),
	}
	if dp.d2gN[c] > 0 {
		cs.SLOAttainedPct = 100 * float64(dp.d2gOK[c]) / float64(dp.d2gN[c])
	}
	return cs
}

func pad4(n int) string {
	var buf [8]byte
	s := strconv.AppendInt(buf[:0], int64(n), 10)
	out := make([]byte, 0, 4+len(s))
	for i := len(s); i < 4; i++ {
		out = append(out, '0')
	}
	return string(append(out, s...))
}

func clampMS(ms int64) int64 {
	if ms < 50 {
		return 50
	}
	return ms
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
