package scale

// Chaos mode: the steady-state churn workload run under an adversarial
// network schedule. Partition storms isolate a random group of agents from
// the rest of the control plane (master, standby, applications) and heal
// after a configured duration — one storm longer than the master's
// heartbeat timeout (dead-declaration, revocation wave, reissue, and the
// heal-time capacity resync), one shorter (pure sequence-gap repair, no
// deaths). Link-flap windows bounce individual agent links, delay spikes
// stretch and reorder their traffic, and an optional lock-service partition
// cuts the primary from the lease while it still reaches every agent — the
// dueling-masters shape the split-brain fencing exists for. The headline
// metric is convergence-after-heal: from each heal instant, how long until
// every partitioned machine's agent ledger again equals the primary's grant
// ledger, polled on a fixed virtual-time cadence so the measurement is
// deterministic. Results land in the `chaos` section of BENCH_scale.json
// and are budget-gated in CI.

import (
	"math/rand"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// DefaultChaosConfig is the paper-scale chaos run: the 5,000-machine churn
// workload with two partition storms inside the measurement window — 6 s
// (beyond the 3 s heartbeat timeout) and 2 s (below it) over 2% of the
// cluster — a link-flap window, delay spikes, and a 5 s lock-service
// partition of the primary.
func DefaultChaosConfig() Config {
	c := DefaultChurnConfig()
	c.Chaos = true
	c.CheckInvariants = true
	c.ChaosPartitionAt = []sim.Time{50 * sim.Second, 65 * sim.Second}
	c.ChaosPartitionFor = []sim.Time{6 * sim.Second, 2 * sim.Second}
	c.ChaosPartitionPct = 2
	c.ChaosFlapAt = []sim.Time{72 * sim.Second}
	c.ChaosFlaps = 4
	c.ChaosSpikeAt = []sim.Time{75 * sim.Second}
	c.ChaosSpikes = 4
	c.ChaosSpikeDelay = 5 * sim.Millisecond
	c.ChaosLockPartitionAt = 80 * sim.Second
	c.ChaosLockPartitionFor = 5 * sim.Second
	return c
}

// SmokeChaosConfig is the CI-sized chaos run: the 100-machine churn smoke
// with the same storm shapes compressed into its 50-second horizon.
func SmokeChaosConfig() Config {
	c := SmokeChurnConfig()
	c.Chaos = true
	c.CheckInvariants = true
	c.ChaosPartitionAt = []sim.Time{24 * sim.Second, 33 * sim.Second}
	c.ChaosPartitionFor = []sim.Time{6 * sim.Second, 2 * sim.Second}
	c.ChaosPartitionPct = 5
	c.ChaosFlapAt = []sim.Time{37 * sim.Second}
	c.ChaosFlaps = 2
	c.ChaosSpikeAt = []sim.Time{40 * sim.Second}
	c.ChaosSpikes = 2
	c.ChaosSpikeDelay = 5 * sim.Millisecond
	c.ChaosLockPartitionAt = 42 * sim.Second
	c.ChaosLockPartitionFor = 5 * sim.Second
	return c
}

const (
	// chaosConvergePoll is the convergence probe cadence after each heal. A
	// fixed virtual-time grid keeps the recorded convergence times exact
	// multiples of the poll period and identical across shard counts.
	chaosConvergePoll = 5 * sim.Millisecond
	// chaosConvergeTimeout caps one heal's probe; a window that never
	// converges records the cap and counts in Unconverged (which fails the
	// budget check unconditionally).
	chaosConvergeTimeout = 30 * sim.Second
	// chaosDefaultPartitionFor is the storm duration when the config lists
	// none for a storm index.
	chaosDefaultPartitionFor = 5 * sim.Second
)

// czState is the chaos-mode bookkeeping.
type czState struct {
	h *harness
	// frng is the dedicated fault stream (victim draws, fire times), so
	// storm placement cannot perturb the workload's random draws.
	frng *rand.Rand

	plan    []faults.Injection
	skipped int

	// victimActive marks machines inside a heal→converged window (by dense
	// ID): grants arriving on them count as reissued repair traffic.
	victimActive []bool
	// partActive counts currently-open partitions: revocations observed
	// while one is open are grants the partition cost the applications.
	partActive int

	partitions          int
	machinesPartitioned int
	heals               int
	flapped             int
	spiked              int
	lockPartitions      int
	unconverged         int
	lost                uint64
	reissued            uint64

	conv *metrics.Histogram
}

func newCZState(h *harness, machines int) *czState {
	return &czState{
		h:            h,
		frng:         rand.New(rand.NewSource(h.cfg.Seed + 5)),
		victimActive: make([]bool, machines),
		conv:         h.reg.Histogram("scale.chaos_convergence_ms"),
	}
}

// scheduleChaos arms the whole adversarial schedule up front. Every random
// draw (partition groups, flap/spike victims, fire times) happens now on the
// dedicated fault stream, through the same faults.ApplyTo planner the
// standalone fault driver uses.
func (h *harness) scheduleChaos() {
	cz := h.cz
	cfg := h.cfg
	h.net.EnableLinkStats()

	apply := func(camp faults.Campaign) {
		plan, skipped := faults.ApplyTo(chaosTarget{h}, camp)
		cz.plan = append(cz.plan, plan...)
		cz.skipped += skipped
	}
	k := int(float64(h.top.Size()) * cfg.ChaosPartitionPct / 100)
	if k < 1 {
		k = 1
	}
	for i, at := range cfg.ChaosPartitionAt {
		dur := chaosDefaultPartitionFor
		if i < len(cfg.ChaosPartitionFor) && cfg.ChaosPartitionFor[i] > 0 {
			dur = cfg.ChaosPartitionFor[i]
		}
		apply(faults.Campaign{
			Start: at, Window: sim.Millisecond,
			NetworkPartition: 1, PartitionMachines: k, PartitionFor: dur,
		})
	}
	for _, at := range cfg.ChaosFlapAt {
		apply(faults.Campaign{Start: at, Window: sim.Millisecond, LinkFlap: cfg.ChaosFlaps})
	}
	for _, at := range cfg.ChaosSpikeAt {
		apply(faults.Campaign{
			Start: at, Window: sim.Millisecond,
			DelaySpike: cfg.ChaosSpikes, SpikeDelay: cfg.ChaosSpikeDelay,
		})
	}
	if cfg.ChaosLockPartitionAt > 0 && cfg.ChaosLockPartitionFor > 0 {
		h.eng.At(cfg.ChaosLockPartitionAt, cz.lockPartition)
	}
}

// chaosTarget adapts the harness to faults.Target + faults.NetworkTarget.
// Chaos campaigns carry network faults only, so the machine-fault hooks are
// deliberately inert (the churn workload keeps every machine alive).
type chaosTarget struct{ h *harness }

func (t chaosTarget) Rand() *rand.Rand            { return t.h.cz.frng }
func (t chaosTarget) At(at sim.Time, fn func())   { t.h.eng.At(at, fn) }
func (t chaosTarget) Machines() []string          { return t.h.top.Machines() }
func (t chaosTarget) KillMachine(string)          {}
func (t chaosTarget) BreakMachine(string)         {}
func (t chaosTarget) SlowMachine(string, float64) {}
func (t chaosTarget) KillPrimaryMaster()          {}

func (t chaosTarget) PartitionMachines(group []string, dur sim.Time) {
	t.h.cz.beginPartition(group, dur)
}

func (t chaosTarget) FlapMachineLink(m string, down, up sim.Time, cycles int) {
	t.h.cz.flap(m, down, up, cycles)
}

func (t chaosTarget) SpikeMachineLink(m string, extra, dur sim.Time) {
	t.h.cz.spike(m, extra, dur)
}

// beginPartition isolates the group's agents from the rest of the control
// plane (the transport holds one partition at a time, so an overlapping
// storm retries until the previous one healed) and schedules the heal.
func (cz *czState) beginPartition(group []string, dur sim.Time) {
	h := cz.h
	if h.net.Partitioned() {
		h.eng.After(500*sim.Millisecond, func() { cz.beginPartition(group, dur) })
		return
	}
	cz.partitions++
	cz.machinesPartitioned += len(group)
	cz.partActive++
	eps := make([]string, len(group))
	ids := make([]int32, len(group))
	for i, m := range group {
		eps[i] = protocol.AgentEndpoint(m)
		ids[i] = h.top.MachineID(m)
	}
	h.net.Isolate(eps)
	h.eng.After(dur, func() { cz.heal(ids) })
}

// heal lifts the partition and starts the convergence probe: every
// chaosConvergePoll, compare each victim machine's agent allocation table
// against the primary's grant ledger until they all match (or the timeout
// records the window as unconverged).
func (cz *czState) heal(victims []int32) {
	h := cz.h
	cz.partActive--
	h.net.Heal()
	cz.heals++
	for _, id := range victims {
		cz.victimActive[id] = true
	}
	healAt := h.eng.Now()
	deadline := healAt + chaosConvergeTimeout
	finish := func(ms float64) {
		cz.conv.Observe(ms)
		for _, id := range victims {
			cz.victimActive[id] = false
		}
	}
	var poll func()
	poll = func() {
		if cz.convergedAll(victims) {
			finish(float64(h.eng.Now()-healAt) / float64(sim.Millisecond))
			return
		}
		if h.eng.Now() >= deadline {
			cz.unconverged++
			finish(float64(chaosConvergeTimeout) / float64(sim.Millisecond))
			return
		}
		h.eng.After(chaosConvergePoll, poll)
	}
	h.eng.After(chaosConvergePoll, poll)
}

// convergedAll reports whether every victim machine's agent-side allocation
// table equals the primary master's grant ledger for that machine. During an
// interregnum there is no authoritative ledger, so nothing converges.
func (cz *czState) convergedAll(victims []int32) bool {
	h := cz.h
	s := h.primarySched()
	if s == nil {
		return false
	}
	byMachine := s.GrantedByMachine()
	for _, id := range victims {
		if !ledgerEqual(byMachine[h.top.MachineName(id)], h.agents[id].Allocations()) {
			return false
		}
	}
	return true
}

// ledgerEqual compares two app → unit → count tables (both sides omit zero
// counts, so length equality plus entry equality is exact).
func ledgerEqual(a, b map[string]map[int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for app, ua := range a {
		ub := b[app]
		if len(ua) != len(ub) {
			return false
		}
		for unit, n := range ua {
			if ub[unit] != n {
				return false
			}
		}
	}
	return true
}

// flap cycles one agent's link down/up without touching its process state.
func (cz *czState) flap(m string, down, up sim.Time, cycles int) {
	h := cz.h
	cz.flapped++
	ep := protocol.AgentEndpoint(m)
	var cycle func(k int)
	cycle = func(k int) {
		if k >= cycles {
			return
		}
		h.net.SetLinkDown(ep, true)
		h.eng.After(down, func() {
			h.net.SetLinkDown(ep, false)
			h.eng.After(up, func() { cycle(k + 1) })
		})
	}
	cycle(0)
}

// spike adds extra one-way delay on one agent's links for dur. Spiked
// messages land out of order relative to un-spiked ones — exactly the
// reordering the stale-sync and gap machinery must absorb.
func (cz *czState) spike(m string, extra, dur sim.Time) {
	h := cz.h
	cz.spiked++
	ep := protocol.AgentEndpoint(m)
	h.net.SetLinkDelay(ep, extra)
	h.eng.After(dur, func() { h.net.SetLinkDelay(ep, 0) })
}

// lockPartition cuts the current primary from the lock service while it
// still reaches every agent: the lease expires server-side, the standby
// promotes, and the deposed primary must self-demote at its lease deadline —
// exactly one master may win. Fired during an interregnum it retries.
func (cz *czState) lockPartition() {
	h := cz.h
	for i, m := range h.masters {
		if m != nil && m.IsPrimary() {
			cz.lockPartitions++
			idx := i
			h.lockReach[idx] = false
			h.eng.After(h.cfg.ChaosLockPartitionFor, func() { h.lockReach[idx] = true })
			return
		}
	}
	h.eng.After(500*sim.Millisecond, cz.lockPartition)
}

// noteGrant/noteRevoke are the scaleApp callbacks' chaos hooks. A revoke
// while a partition is open is a grant the storm cost the application (the
// master declared the unreachable machine dead and evacuated it); a grant
// landing on a victim machine between heal and convergence is repair
// traffic re-establishing the pre-storm allocation.
func (cz *czState) noteGrant(machine int32, count int) {
	if cz.victimActive[machine] {
		cz.reissued += uint64(count)
	}
}

func (cz *czState) noteRevoke(count int) {
	if cz.partActive > 0 {
		cz.lost += uint64(count)
	}
}

// ChaosStats is the `chaos` section of BENCH_scale.json. The struct is
// comparable (flat fields only) so determinism tests assert whole-struct
// equality across repeated runs and shard counts.
type ChaosStats struct {
	Partitions          int `json:"partitions"`
	MachinesPartitioned int `json:"machines_partitioned"`
	Heals               int `json:"heals"`
	LinkFlaps           int `json:"link_flaps"`
	DelaySpikes         int `json:"delay_spikes"`
	LockPartitions      int `json:"lock_partitions"`
	Injections          int `json:"injections"`
	InjectionsSkipped   int `json:"injections_skipped,omitempty"`

	// Convergence-after-heal: heal instant → every victim machine's agent
	// ledger equals the primary's grant ledger, in virtual milliseconds.
	ConvergenceP50MS float64 `json:"convergence_p50_ms"`
	ConvergenceP99MS float64 `json:"convergence_p99_ms"`
	ConvergenceMaxMS float64 `json:"convergence_max_ms"`
	// Unconverged counts heal windows that hit the probe timeout (must be
	// 0; CheckBudgets fails it unconditionally).
	Unconverged int `json:"unconverged,omitempty"`

	// LostGrants are revocations applications observed while a partition
	// was open; ReissuedGrants are grants landing on victim machines during
	// their heal→convergence window.
	LostGrants     uint64 `json:"lost_grants"`
	ReissuedGrants uint64 `json:"reissued_grants"`

	// MasterEpoch is the final election epoch (> 1 iff the lock partition
	// forced a promotion).
	MasterEpoch int `json:"master_epoch"`

	// Per-link loss attribution (transport link stats, chaos runs only):
	// how many ordered endpoint pairs dropped traffic, the total dropped,
	// and the worst pair.
	LinksWithLoss    int    `json:"links_with_loss"`
	LinkMsgsDropped  uint64 `json:"link_msgs_dropped"`
	WorstLink        string `json:"worst_link,omitempty"`
	WorstLinkDropped uint64 `json:"worst_link_dropped,omitempty"`
}

func (cz *czState) snapshot(h *harness) *ChaosStats {
	cs := &ChaosStats{
		Partitions:          cz.partitions,
		MachinesPartitioned: cz.machinesPartitioned,
		Heals:               cz.heals,
		LinkFlaps:           cz.flapped,
		DelaySpikes:         cz.spiked,
		LockPartitions:      cz.lockPartitions,
		Injections:          len(cz.plan),
		InjectionsSkipped:   cz.skipped,
		ConvergenceP50MS:    cz.conv.Quantile(0.5),
		ConvergenceP99MS:    cz.conv.Quantile(0.99),
		ConvergenceMaxMS:    cz.conv.Max(),
		Unconverged:         cz.unconverged,
		LostGrants:          cz.lost,
		ReissuedGrants:      cz.reissued,
	}
	for _, m := range h.masters {
		if m != nil && m.Epoch() > cs.MasterEpoch {
			cs.MasterEpoch = m.Epoch()
		}
	}
	for _, ls := range h.net.LinkStats() {
		if ls.Dropped == 0 {
			continue
		}
		cs.LinksWithLoss++
		cs.LinkMsgsDropped += ls.Dropped
		if ls.Dropped > cs.WorstLinkDropped {
			cs.WorstLinkDropped = ls.Dropped
			cs.WorstLink = ls.From + "->" + ls.To
		}
	}
	return cs
}
