package scale

import (
	"sort"
	"testing"

	"repro/internal/gateway"
	"repro/internal/sim"
)

// gwTiny returns a gateway-mode configuration small enough for unit tests:
// a full million-tenant population (tenant picks are O(1), the population
// costs nothing) but a few thousand submissions on a 20-machine cluster,
// with an in-flight cap low enough that gateway backpressure — not the
// scheduler — is the bottleneck.
func gwTiny() Config {
	c := DefaultGatewayConfig()
	c.Racks, c.MachinesPerRack = 4, 5
	c.GatewaySubmissions = 1500
	if testing.Short() {
		c.GatewaySubmissions = 600
	}
	c.GatewayHotTenants = 20
	c.ArrivalWindow = 5 * sim.Second
	c.FailoverEvery = 3 * sim.Second
	c.Horizon = 2 * sim.Minute
	c.MasterFailoverAt = nil
	lim := gateway.DefaultLimits()
	lim.MaxInFlight = 300
	c.GatewayLimits = &lim
	return c
}

func TestGatewayRunCompletes(t *testing.T) {
	cfg := gwTiny()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("gateway run did not drain (sim %.1fs): %+v", res.SimSeconds, res.Gateway)
	}
	if len(res.Invariants) > 0 {
		t.Errorf("invariant violations: %v", res.Invariants)
	}
	g := res.Gateway
	if g == nil {
		t.Fatal("no gateway section in the result")
	}
	if g.Submitted != uint64(cfg.GatewaySubmissions) {
		t.Errorf("submitted %d, want %d", g.Submitted, cfg.GatewaySubmissions)
	}
	if g.Completed+g.Shed != g.Submitted {
		t.Errorf("completed %d + shed %d != submitted %d", g.Completed, g.Shed, g.Submitted)
	}
	if g.ShedRateLimit == 0 {
		t.Error("heavy hitters never hit the rate limit (skew not exercised)")
	}
	if g.Completed == 0 || res.CompletedApps != int(g.Completed) {
		t.Errorf("completed apps %d vs gateway completed %d", res.CompletedApps, g.Completed)
	}
	if g.AdmissionP99MS <= 0 {
		t.Error("no admission latency measured")
	}
	for _, cs := range []gateway.ClassStats{g.Service, g.Batch} {
		if cs.JainFairness <= 0 || cs.JainFairness > 1 {
			t.Errorf("Jain fairness out of range: %+v", cs)
		}
	}
	if res.AllocsPerAdmission <= 0 || res.MessagesPerAdmission <= 0 {
		t.Error("per-admission budgets not measured")
	}
}

// decisionKey flattens a decision stream without virtual times, for
// set-level comparisons across runs whose timing legitimately differs.
func submitVerdicts(ds []gateway.Decision) map[string]gateway.DecisionKind {
	out := make(map[string]gateway.DecisionKind, len(ds))
	for _, d := range ds {
		if d.Kind != gateway.DecisionAdmit {
			out[d.JobID] = d.Kind
		}
	}
	return out
}

// TestGatewayTraceParity replays the identical 1M-user submission trace
// twice, and across scheduler shard counts 1 vs 4: the admit/shed decision
// stream — order, kinds, and virtual times, pinned by the stream hash and
// the recorded stream — must be byte-identical. The gateway sits upstream
// of the sharded scheduler, and the sharded scheduler is byte-identical to
// serial by construction, so nothing downstream may leak back into
// admission.
func TestGatewayTraceParity(t *testing.T) {
	base := gwTiny()
	base.RecordGatewayDecisions = true

	// Every variant runs the same batched-round configuration: admission is
	// deliberately coupled to completion via the in-flight cap, so decision
	// parity is only claimed across runs whose master configuration is
	// identical — the same trace twice, and shard counts 1 vs 4 vs 8 (whose
	// decision streams are byte-identical by the PR 3 construction).
	var ref *Result
	for i, variant := range []struct {
		name   string
		shards int
	}{
		{"shards-1-a", 1}, {"shards-1-b", 1}, {"shards-4", 4}, {"shards-8", 8},
	} {
		cfg := base
		cfg.Shards = variant.shards
		cfg.RoundWindow = DefaultRoundWindow
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatalf("%s: run did not drain", variant.name)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Gateway.DecisionHash != ref.Gateway.DecisionHash {
			t.Errorf("%s: decision hash %s diverges from %s",
				variant.name, res.Gateway.DecisionHash, ref.Gateway.DecisionHash)
		}
		if len(res.GatewayDecisions) != len(ref.GatewayDecisions) {
			t.Fatalf("%s: %d decisions vs %d", variant.name,
				len(res.GatewayDecisions), len(ref.GatewayDecisions))
		}
		for k := range res.GatewayDecisions {
			if res.GatewayDecisions[k] != ref.GatewayDecisions[k] {
				t.Fatalf("%s: decision %d diverges: %+v vs %+v",
					variant.name, k, res.GatewayDecisions[k], ref.GatewayDecisions[k])
			}
		}
	}
}

// TestGatewayFailoverMetamorphic is the gateway's metamorphic failover
// test: with shedding driven only by the (clock-deterministic) token
// buckets — no backpressure-coupled bounds — the same submission trace run
// with 0 and 1 master failovers must shed the same jobs for the same
// reasons and complete the identical admitted-job set, with the admission-
// conservation checker silent throughout.
func TestGatewayFailoverMetamorphic(t *testing.T) {
	base := gwTiny()
	base.RecordGatewayDecisions = true
	lim := gateway.DefaultLimits()
	lim.MaxInFlight = 0 // unbounded: admission timing must not change decisions
	lim.MaxQueued = 0
	lim.QueueCap = 0
	base.GatewayLimits = &lim

	run := func(failovers int) *Result {
		cfg := base
		if failovers > 0 {
			cfg = cfg.WithMasterFailovers(failovers)
			cfg.RecordGatewayDecisions = true
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatalf("%d failovers: run did not drain (sim %.1fs)", failovers, res.SimSeconds)
		}
		if len(res.Invariants) > 0 {
			t.Fatalf("%d failovers: invariant violations: %v", failovers, res.Invariants)
		}
		return res
	}

	a, b := run(0), run(1)
	if b.MasterFailovers != 1 {
		t.Fatalf("failover run reported %d crashes, want 1", b.MasterFailovers)
	}
	if b.Gateway.FailoverReplays == 0 && b.Gateway.AdmitRetries == 0 {
		t.Log("note: no admits were in flight at the crash (replay path idle)")
	}

	va, vb := submitVerdicts(a.GatewayDecisions), submitVerdicts(b.GatewayDecisions)
	if len(va) != len(vb) {
		t.Fatalf("verdict counts diverge: %d vs %d", len(va), len(vb))
	}
	for id, k := range va {
		if vb[id] != k {
			t.Errorf("job %s: verdict %v without failover, %v with", id, k, vb[id])
		}
	}

	ca := append([]string(nil), a.Completed...)
	cb := append([]string(nil), b.Completed...)
	sort.Strings(ca)
	sort.Strings(cb)
	if len(ca) != len(cb) {
		t.Fatalf("completion sets diverge: %d vs %d jobs", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("completion set diverges at %d: %q vs %q", i, ca[i], cb[i])
		}
	}
}

func TestGatewayRejectsBadConfig(t *testing.T) {
	cfg := gwTiny()
	cfg.GatewaySubmissions = 0
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for gateway mode without submissions")
	}
}
