package scale

import (
	"testing"

	"repro/internal/sim"
)

// obTiny returns an observability configuration small enough for unit
// tests: the 20-machine churn workload with a 64-row ring (so the run
// wraps it many times), queries every second, and the two scheduled flap
// windows inside the measurement window.
func obTiny() Config {
	c := SmokeObsConfig()
	c.Racks, c.MachinesPerRack = 4, 5
	c.Apps, c.UnitsPerApp = 30, 5
	c.ContainersPerUnit = 3
	c.HoldTime = 2 * sim.Second
	c.ArrivalWindow = 3 * sim.Second
	c.ChurnWarmup = 6 * sim.Second
	c.ChurnMeasure = 24 * sim.Second
	c.Horizon = c.ChurnWarmup + c.ChurnMeasure
	c.ObsRetain = 64
	c.ObsQueryEvery = sim.Second
	return c
}

func TestObsRunRecordsAndQueriesLive(t *testing.T) {
	res, err := Run(obTiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Invariants) > 0 {
		t.Errorf("invariant violations under obs: %v", res.Invariants)
	}
	o := res.Obs
	if o == nil {
		t.Fatal("no obs section in the result")
	}

	// The ring wrapped: the 30 s run at a 20 ms round window records far
	// more rows than the 64 the ring retains.
	if o.SamplesTotal <= uint64(o.RingCapacity) {
		t.Errorf("ring never wrapped: total=%d capacity=%d", o.SamplesTotal, o.RingCapacity)
	}
	if o.SamplesRetained != o.RingCapacity {
		t.Errorf("retained=%d, want full ring %d", o.SamplesRetained, o.RingCapacity)
	}
	if o.Series < 15 {
		t.Errorf("only %d series registered", o.Series)
	}
	if o.BytesPerSample != 8*(o.Series+1) {
		t.Errorf("bytes/sample=%d with %d series", o.BytesPerSample, o.Series)
	}

	// The record path stayed alloc-free in steady state.
	if o.AllocsPerSample != 0 {
		t.Errorf("allocs/sample = %.3f, want 0", o.AllocsPerSample)
	}

	// Live queries ran mid-run and returned rows.
	if o.Queries == 0 || o.Responses == 0 || o.QueryResults == 0 {
		t.Errorf("live queries did not run: queries=%d responses=%d results=%d",
			o.Queries, o.Responses, o.QueryResults)
	}
	if o.QueryChecksum == 0 {
		t.Error("query checksum not accumulated")
	}

	// Both flap windows fired and their loss is attributed to the watched
	// links.
	if o.FlapWindows != 2 {
		t.Errorf("flap windows = %d, want 2", o.FlapWindows)
	}
	if o.WatchedLinks != 3 {
		t.Errorf("watched links = %d, want 3", o.WatchedLinks)
	}
	if o.LinkDropsObserved == 0 {
		t.Error("no link drops observed through two flap windows")
	}

	// The incremental checkpoint wrote bytes proportional to churn, not
	// cluster state: the measured saving over snapshot-per-write must meet
	// the acceptance line.
	if o.CheckpointBytes == 0 || o.CheckpointWrites == 0 {
		t.Errorf("checkpoint accounting empty: writes=%d bytes=%d",
			o.CheckpointWrites, o.CheckpointBytes)
	}
	if o.CheckpointSavingsX < 5 {
		t.Errorf("checkpoint savings %.1fx over full snapshots, want >= 5x", o.CheckpointSavingsX)
	}

	// Budget plumbing trips when set below the measured values.
	if bad := res.CheckBudgets(Budgets{MaxCheckpointBytesPerJob: o.CheckpointBytesPerJob / 2}); len(bad) != 1 {
		t.Errorf("checkpoint bytes/job budget did not trip: %v", bad)
	}
	if bad := res.CheckBudgets(Budgets{
		MaxObsAllocsPerSample:    0.01,
		MaxCheckpointBytesPerJob: o.CheckpointBytesPerJob + 1,
	}); len(bad) != 0 {
		t.Errorf("in-budget run flagged: %v", bad)
	}
}

// TestObsDeterminismAndShardParity runs the identical obs schedule twice at
// shards=1 and once at shards=4: every virtual-time-derived field of the
// obs section must be identical — including the query checksum, which pins
// the full content of every live query response. Wall-clock fields (query
// latencies, the allocation calibration) are zeroed before comparison.
func TestObsDeterminismAndShardParity(t *testing.T) {
	base := obTiny()
	base.ChurnMeasure = 16 * sim.Second
	base.Horizon = base.ChurnWarmup + base.ChurnMeasure

	var ref *ObsStats
	for _, variant := range []struct {
		name   string
		shards int
	}{
		{"shards-1-a", 1}, {"shards-1-b", 1}, {"shards-4", 4},
	} {
		cfg := base
		cfg.Shards = variant.shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Obs == nil {
			t.Fatalf("%s: no obs section", variant.name)
		}
		if len(res.Invariants) > 0 {
			t.Errorf("%s: invariant violations: %v", variant.name, res.Invariants)
		}
		got := *res.Obs
		got.QueryP50US, got.QueryP99US, got.AllocsPerSample = 0, 0, 0
		if ref == nil {
			ref = &got
			if ref.SamplesTotal == 0 || ref.Queries == 0 || ref.QueryChecksum == 0 {
				t.Fatalf("reference run measured nothing useful: %+v", ref)
			}
			continue
		}
		if got != *ref {
			t.Errorf("%s: obs stats diverge:\n got %+v\nwant %+v", variant.name, got, *ref)
		}
	}
}

func TestObsRequiresRoundWindow(t *testing.T) {
	cfg := obTiny()
	cfg.RoundWindow = 0
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for obs mode without a round window")
	}
}
