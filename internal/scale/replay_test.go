package scale

import (
	"testing"

	"repro/internal/sim"
)

// rpTiny returns a replay configuration small enough for unit tests: two
// 20-second days on a 20-machine cluster, one failure storm at the first
// day's peak, one master failover in the second day's shoulder.
func rpTiny() Config {
	c := SmokeReplayConfig()
	c.Racks, c.MachinesPerRack = 4, 5
	c.GatewayUsers = 20_000
	c.GatewayHotTenants = 20
	c.ReplayDays = 2
	c.ReplayDayLength = 20 * sim.Second
	c.ReplaySessionsPerSec = 8
	if testing.Short() {
		c.ReplaySessionsPerSec = 5
	}
	c.ReplayBurstGap = 100 * sim.Millisecond
	c.ReplayWidthMax = 8
	c.ReplayHoldMin = 200 * sim.Millisecond
	c.ReplayHoldMax = 2 * sim.Second
	c.ReplayStormAt = []sim.Time{3 * sim.Second}
	c.ReplayStormWindow = 2 * sim.Second
	c.ReplayStormDowntime = 8 * sim.Second
	c.MasterFailoverAt = []sim.Time{28 * sim.Second}
	c.Horizon = 2 * sim.Minute
	return c
}

func TestReplayRunCompletes(t *testing.T) {
	cfg := rpTiny()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("replay run did not drain (sim %.1fs)", res.SimSeconds)
	}
	if len(res.Invariants) > 0 {
		t.Errorf("invariant violations: %v", res.Invariants)
	}
	rp := res.Replay
	if rp == nil {
		t.Fatal("no replay section in the result")
	}
	g := res.Gateway
	if g == nil {
		t.Fatal("no gateway section in the result")
	}

	// The open-loop trace fed the gateway: every submission accounted for.
	if rp.Submissions <= 0 || uint64(rp.Submissions) != g.Submitted {
		t.Errorf("replay submissions %d vs gateway submitted %d", rp.Submissions, g.Submitted)
	}
	if rp.Sessions == 0 || uint64(rp.Submissions) < rp.Sessions {
		t.Errorf("sessions %d > submissions %d", rp.Sessions, rp.Submissions)
	}
	if g.Completed+g.Shed != g.Submitted {
		t.Errorf("completed %d + shed %d != submitted %d", g.Completed, g.Shed, g.Submitted)
	}
	if rp.MeanBurstLen <= 1 {
		t.Errorf("mean burst length %.2f, want > 1 (correlated sessions)", rp.MeanBurstLen)
	}

	// Diurnal shape: the peak quarter-day must carry well more traffic than
	// the trough quarter (rate ratio is 4 at ±60% amplitude).
	if rp.SubmissionsPeak <= 2*rp.SubmissionsTrough {
		t.Errorf("diurnal shape missing: peak %d vs trough %d submissions",
			rp.SubmissionsPeak, rp.SubmissionsTrough)
	}

	// The storm landed: one victim of each kind on a 20-machine cluster.
	if rp.Storms != 1 || rp.Injections != 3 || rp.InjectionsSkipped != 0 {
		t.Errorf("storms=%d injections=%d skipped=%d, want 1/3/0",
			rp.Storms, rp.Injections, rp.InjectionsSkipped)
	}
	if rp.MachinesKilled != 1 || rp.MachinesBroken != 1 || rp.MachinesSlowed != 1 {
		t.Errorf("killed=%d broken=%d slowed=%d, want 1/1/1",
			rp.MachinesKilled, rp.MachinesBroken, rp.MachinesSlowed)
	}
	if rp.LaunchFailures == 0 {
		t.Error("no launch failures: the broken machine never bounced a grant")
	}
	if rp.SlowHolds == 0 {
		t.Error("no stretched holds: the slow machine never received a grant")
	}

	// Per-class SLO measurements exist for both classes.
	for _, cs := range []ReplayClassStats{rp.Service, rp.Batch} {
		if cs.Jobs == 0 {
			t.Errorf("class saw no jobs: %+v", cs)
		}
		if cs.AdmissionP50MS <= 0 || cs.DemandToGrantP50MS <= 0 {
			t.Errorf("class missing latency data: %+v", cs)
		}
		if cs.SLOMS <= 0 || cs.SLOAttainedPct <= 0 {
			t.Errorf("class missing SLO attainment: %+v", cs)
		}
		if cs.Grants == 0 {
			t.Errorf("class saw no grants: %+v", cs)
		}
	}
	// Service jobs are latency-sensitive: their demand-to-grant p99 must
	// not exceed batch's (they schedule at higher priority).
	if rp.Service.DemandToGrantP99MS > 2*rp.Batch.DemandToGrantP99MS+1 {
		t.Errorf("service d2g p99 %.1f ms far above batch %.1f ms",
			rp.Service.DemandToGrantP99MS, rp.Batch.DemandToGrantP99MS)
	}

	// Utilization was sampled in every phase, and the storm + failover
	// actually revoked work somewhere.
	for name, ps := range map[string]ReplayPhaseStats{
		"peak": rp.Peak, "trough": rp.Trough, "storm": rp.Storm,
	} {
		if ps.Samples == 0 {
			t.Errorf("no utilization samples in %s phase", name)
		}
		if ps.CPUUtilPct < 0 || ps.CPUUtilPct > 100 {
			t.Errorf("%s CPU utilization out of range: %+v", name, ps)
		}
	}
	if rp.Service.Revokes+rp.Batch.Revokes == 0 {
		t.Error("no revocations through a NodeDown storm and a master failover")
	}
	if rp.DecisionHash == "" {
		t.Error("no decision hash pinned")
	}
	if res.MasterFailovers != 1 {
		t.Errorf("master failovers %d, want 1", res.MasterFailovers)
	}
}

// TestReplayDeterminismAndShardParity runs the identical replay trace twice
// at shards=1 and once at shards=4: every virtual-time measurement — the
// decision hash, per-class SLO numbers, phase utilization, storm accounting —
// must be identical. The whole ReplayStats struct is comparable, so the runs
// must agree field for field.
func TestReplayDeterminismAndShardParity(t *testing.T) {
	base := rpTiny()
	base.ReplayDays = 1
	base.ReplayDayLength = 12 * sim.Second
	base.ReplaySessionsPerSec = 6
	base.ReplayStormAt = []sim.Time{2 * sim.Second}
	base.MasterFailoverAt = nil

	var ref *ReplayStats
	for _, variant := range []struct {
		name   string
		shards int
	}{
		{"shards-1-a", 1}, {"shards-1-b", 1}, {"shards-4", 4},
	} {
		cfg := base
		cfg.Shards = variant.shards
		cfg.RoundWindow = DefaultRoundWindow
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatalf("%s: run did not drain", variant.name)
		}
		if res.Replay == nil {
			t.Fatalf("%s: no replay section", variant.name)
		}
		if ref == nil {
			ref = res.Replay
			if ref.Submissions == 0 || ref.DecisionHash == "" {
				t.Fatalf("reference run measured nothing: %+v", ref)
			}
			continue
		}
		if *res.Replay != *ref {
			t.Errorf("%s: replay stats diverge:\n got %+v\nwant %+v",
				variant.name, *res.Replay, *ref)
		}
	}
}

func TestReplayRejectsBadConfig(t *testing.T) {
	cfg := rpTiny()
	cfg.ReplayDays = 0
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for replay mode without days")
	}
	cfg = rpTiny()
	cfg.Dataplane = true
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for replay + dataplane")
	}
}
