package scale

// SMP bench lane: the multi-core measurement the historical BENCH numbers
// could not make (CI and the recorded baselines ran on single-CPU
// containers, where sharding can only cost). The lane sweeps shard counts
// over three workloads and records BENCH_scale_smp.json:
//
//   - core: a direct scheduler-kernel round loop (release one app's
//     grants → one wide AssignOn sweep → re-demand) at the paper
//     footprint, where parallel scoring dominates. This is the lane the
//     minimum-speedup budget gates: the full harness runs a serial
//     discrete-event loop around the scheduler, so Amdahl caps its
//     end-to-end speedup well below the kernel's.
//   - rounds / churn: the classic and steady-state harness workloads,
//     recorded for end-to-end context (wall seconds, commit ratio, steal
//     rate) but not speedup-gated.
//
// Every run folds its observed decision stream into an FNV-1a hash; the
// lane hard-fails if any shard count's hash diverges from P=1's — the
// recorded witness that parallelism never changed a scheduling decision.
// On hosts with fewer than four cores (or GOMAXPROCS pinned below four)
// the speedup gate is skipped and the result is tagged single-core, so CI
// degrades gracefully instead of flaking.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/master"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
)

// SMPOptions configures the RunSMP sweep.
type SMPOptions struct {
	// Rounds is the classic harness workload (batched rounds); Churn the
	// steady-state one. Both are run once per shard count with the
	// decision-stream hash enabled.
	Rounds Config
	Churn  Config
	// ShardCounts are the swept parallelism degrees; the first entry is
	// the speedup baseline (conventionally 1).
	ShardCounts []int
	// Core-lane shape: CoreRacks×CoreMachinesPerRack machines,
	// CoreApps saturating apps, CoreRounds release/sweep/re-demand
	// rounds per shard count. Fixed round counts keep the decision
	// stream (and its hash) identical across shard counts.
	CoreRacks           int
	CoreMachinesPerRack int
	CoreApps            int
	CoreRounds          int
}

// DefaultSMPOptions is the recorded configuration: the paper footprint on
// every lane, shard counts 1/2/4/8.
func DefaultSMPOptions() SMPOptions {
	return SMPOptions{
		Rounds:              DefaultConfig(),
		Churn:               DefaultChurnConfig(),
		ShardCounts:         []int{1, 2, 4, 8},
		CoreRacks:           125,
		CoreMachinesPerRack: 40,
		CoreApps:            8,
		CoreRounds:          160,
	}
}

// SmokeSMPOptions is the CI-sized sweep: smoke harness workloads, the
// same paper-footprint core lane (it is cheap — a few hundred
// milliseconds per shard count).
func SmokeSMPOptions() SMPOptions {
	o := DefaultSMPOptions()
	o.Rounds = SmokeConfig()
	o.Churn = SmokeChurnConfig()
	o.CoreRounds = 96
	return o
}

// SMPCoreRun is one shard count's core-lane measurement.
type SMPCoreRun struct {
	Shards          int     `json:"shards"`
	Rounds          int     `json:"rounds"`
	Decisions       uint64  `json:"decisions"`
	WallSeconds     float64 `json:"wall_seconds"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	// SpeedupVsP1 is this run's decision throughput over the sweep's
	// first shard count (wall-clock, same decision stream).
	SpeedupVsP1 float64 `json:"speedup_vs_p1,omitempty"`
	CommitRatio float64 `json:"parallel_commit_ratio,omitempty"`
	StealRate   float64 `json:"parallel_steal_rate,omitempty"`
	Imbalance   float64 `json:"parallel_score_imbalance,omitempty"`
	// DecisionHash is the FNV-1a fold of every decision the round loop
	// observed (app, unit, machine, delta, in commit order).
	DecisionHash string `json:"decision_stream_hash"`
	Invariants   int    `json:"invariant_violations"`
}

// SMPResult is the BENCH_scale_smp.json payload.
type SMPResult struct {
	Cores      int  `json:"cores"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	MultiCore  bool `json:"multi_core"`
	// Note tags degraded runs ("single-core host: speedup gate skipped");
	// empty on a full multi-core measurement.
	Note        string `json:"note,omitempty"`
	ShardCounts []int  `json:"shard_counts"`

	Core   []SMPCoreRun `json:"core"`
	Rounds []Result     `json:"rounds"`
	Churn  []Result     `json:"churn"`

	// Wall-clock speedups vs the first shard count, index-aligned with
	// ShardCounts (harness lanes use whole-run wall seconds, so they
	// carry the serial event loop; the core lane is the gated one).
	CoreSpeedup   []float64 `json:"core_speedup"`
	RoundsSpeedup []float64 `json:"rounds_speedup"`
	ChurnSpeedup  []float64 `json:"churn_speedup"`
	// CoreSpeedupP4 is the core-lane speedup at shards=4 (0 when 4 is not
	// in the sweep) — the value the minimum-speedup budget gates.
	CoreSpeedupP4 float64 `json:"core_speedup_p4,omitempty"`

	// Decision-stream byte-identity witnesses: every shard count's hash
	// equal to the baseline's, per lane. A false here is a correctness
	// failure regardless of budgets.
	CoreParityOK   bool `json:"core_parity_ok"`
	RoundsParityOK bool `json:"rounds_parity_ok"`
	ChurnParityOK  bool `json:"churn_parity_ok"`
}

// ParityOK reports whether every lane's decision streams were
// byte-identical across the swept shard counts.
func (r *SMPResult) ParityOK() bool {
	return r.CoreParityOK && r.RoundsParityOK && r.ChurnParityOK
}

// RunSMP runs the three-lane shard-count sweep. Errors abort (they mean a
// workload failed to run); decision-stream divergence and missing speedup
// are recorded in the result for the caller to gate on.
func RunSMP(opts SMPOptions) (*SMPResult, error) {
	if len(opts.ShardCounts) == 0 {
		return nil, fmt.Errorf("smp: no shard counts")
	}
	res := &SMPResult{
		Cores:       runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		ShardCounts: opts.ShardCounts,
	}
	res.MultiCore = res.Cores >= 4 && res.GOMAXPROCS >= 4
	if !res.MultiCore {
		res.Note = fmt.Sprintf("single-core host (cores=%d gomaxprocs=%d): "+
			"wall-clock numbers measure sharding overhead, not speedup; the "+
			"minimum-speedup gate is skipped", res.Cores, res.GOMAXPROCS)
	}
	for _, p := range opts.ShardCounts {
		core, err := runSMPCore(opts, p)
		if err != nil {
			return nil, err
		}
		res.Core = append(res.Core, core)

		rcfg := opts.Rounds
		rcfg.LegacyScan = false
		rcfg.Shards = p
		if rcfg.RoundWindow == 0 {
			rcfg.RoundWindow = DefaultRoundWindow
		}
		rcfg.RecordDecisionHash = true
		rres, err := Run(rcfg)
		if err != nil {
			return nil, fmt.Errorf("smp rounds shards=%d: %w", p, err)
		}
		res.Rounds = append(res.Rounds, *rres)

		ccfg := opts.Churn
		ccfg.LegacyScan = false
		ccfg.Shards = p
		if ccfg.RoundWindow == 0 {
			ccfg.RoundWindow = DefaultRoundWindow
		}
		ccfg.RecordDecisionHash = true
		cres, err := Run(ccfg)
		if err != nil {
			return nil, fmt.Errorf("smp churn shards=%d: %w", p, err)
		}
		res.Churn = append(res.Churn, *cres)
	}
	res.CoreParityOK, res.RoundsParityOK, res.ChurnParityOK = true, true, true
	for i := range opts.ShardCounts {
		res.CoreSpeedup = append(res.CoreSpeedup, ratio(res.Core[i].DecisionsPerSec, res.Core[0].DecisionsPerSec))
		res.RoundsSpeedup = append(res.RoundsSpeedup, ratio(1/res.Rounds[i].WallSeconds, 1/res.Rounds[0].WallSeconds))
		res.ChurnSpeedup = append(res.ChurnSpeedup, ratio(1/res.Churn[i].WallSeconds, 1/res.Churn[0].WallSeconds))
		res.Core[i].SpeedupVsP1 = res.CoreSpeedup[i]
		if opts.ShardCounts[i] == 4 {
			res.CoreSpeedupP4 = res.CoreSpeedup[i]
		}
		if res.Core[i].DecisionHash != res.Core[0].DecisionHash {
			res.CoreParityOK = false
		}
		if res.Rounds[i].DecisionStreamHash != res.Rounds[0].DecisionStreamHash {
			res.RoundsParityOK = false
		}
		if res.Churn[i].DecisionStreamHash != res.Churn[0].DecisionStreamHash {
			res.ChurnParityOK = false
		}
	}
	return res, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// runSMPCore drives the scheduler kernel directly — no simulator, no
// transport — through CoreRounds saturated scheduling rounds: release one
// app's grants in deterministic machine order, sweep the whole cluster,
// restate the released demand. Identical inputs at every shard count make
// the decision hash a byte-identity witness, and scoring dominates the
// loop, so this is where shard parallelism must show up as wall-clock.
func runSMPCore(opts SMPOptions, shards int) (SMPCoreRun, error) {
	run := SMPCoreRun{Shards: shards, Rounds: opts.CoreRounds}
	top, err := topology.Build(topology.Spec{
		Racks: opts.CoreRacks, MachinesPerRack: opts.CoreMachinesPerRack,
		MachineCapacity: topology.PaperTestbedMachine(),
	})
	if err != nil {
		return run, fmt.Errorf("smp core: %w", err)
	}
	s := master.NewScheduler(top, master.Options{Shards: shards})
	apps := make([]string, opts.CoreApps)
	// Each app's standing demand is ~2.4× its cluster share, so the tree
	// always holds queued cluster-level entries and every sweep walks a
	// populated queue (the saturated regime of §5.2).
	perApp := top.Size() * 12 / (5 * opts.CoreApps)
	hash := uint64(fnvOffset)
	fold := func(v uint64) {
		for sh := 0; sh < 64; sh += 8 {
			hash = (hash ^ (v >> sh & 0xff)) * fnvPrime
		}
	}
	foldDecisions := func(ds []master.Decision) {
		run.Decisions += uint64(len(ds))
		for i := range ds {
			d := &ds[i]
			for j := 0; j < len(d.App); j++ {
				hash = (hash ^ uint64(d.App[j])) * fnvPrime
			}
			fold(uint64(d.UnitID))
			fold(uint64(uint32(d.MachineID)))
			fold(uint64(int64(d.Delta)))
		}
	}
	for i := range apps {
		apps[i] = fmt.Sprintf("app-%02d", i)
		if err := s.RegisterApp(apps[i], "", []resource.ScheduleUnit{
			{ID: 1, Priority: 10 + i%3, MaxCount: 1 << 30, Size: resource.New(1000, 4096)},
		}); err != nil {
			return run, fmt.Errorf("smp core: %w", err)
		}
		ds, err := s.UpdateDemand(apps[i], 1, []resource.LocalityHint{
			{Type: resource.LocalityCluster, Count: perApp}})
		if err != nil {
			return run, fmt.Errorf("smp core: %w", err)
		}
		foldDecisions(ds)
	}
	machines := top.Machines()
	start := time.Now()
	for r := 0; r < opts.CoreRounds; r++ {
		app := apps[r%len(apps)]
		released := 0
		granted := s.Granted(app, 1)
		for _, m := range machines { // deterministic machine order
			if n := granted[m]; n > 0 {
				if err := s.Release(app, 1, m, n); err != nil {
					return run, fmt.Errorf("smp core round %d: %w", r, err)
				}
				released += n
			}
		}
		foldDecisions(s.AssignOn(machines))
		ds, err := s.UpdateDemand(app, 1, []resource.LocalityHint{
			{Type: resource.LocalityCluster, Count: released}})
		if err != nil {
			return run, fmt.Errorf("smp core round %d: %w", r, err)
		}
		foldDecisions(ds)
	}
	run.WallSeconds = time.Since(start).Seconds()
	if run.WallSeconds > 0 {
		run.DecisionsPerSec = float64(run.Decisions) / run.WallSeconds
	}
	run.DecisionHash = fmt.Sprintf("%016x", hash)
	run.Invariants = len(s.CheckInvariants())
	if ps := s.ParallelStats(); ps.Sweeps > 0 {
		run.CommitRatio = ps.CommitRatio()
		run.StealRate = ps.StealRate()
		run.Imbalance = ps.Imbalance()
	}
	return run, nil
}

// TenXChurnConfig is the 10× footprint: 50,000 machines and one million
// schedule units cycling through the steady-state churn workload with the
// cluster-wide invariant checker attached — the configuration that
// stresses the int32-ID machine slices, the calendar queue and the
// locality-tree bitmaps an order of magnitude past the paper's testbed.
// The windows are shorter than the paper-scale churn run's: the point is
// surviving the footprint with zero invariant violations, not a
// throughput baseline.
func TenXChurnConfig() Config {
	c := DefaultChurnConfig()
	c.Racks, c.MachinesPerRack = 1250, 40 // 50k machines
	c.Apps, c.UnitsPerApp = 25_000, 40    // 1M units
	c.ArrivalWindow = 20 * sim.Second
	c.ChurnWarmup = 30 * sim.Second
	c.ChurnMeasure = 20 * sim.Second
	c.Horizon = c.ChurnWarmup + c.ChurnMeasure
	c.Shards = 4
	c.RoundWindow = DefaultRoundWindow
	c.CheckInvariants = true
	return c
}
