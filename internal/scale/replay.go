package scale

// Replay mode: trace-driven diurnal workloads over the million-tenant
// gateway population, in the style of the public Alibaba cluster traces.
// A nonhomogeneous-Poisson session process (internal/trace.DiurnalRate)
// modulates arrival rate sinusoidally over a simulated day; each session is
// one tenant submitting a correlated burst of jobs; job widths and container
// hold times are heavy-tailed bounded-Pareto draws keyed off the job-ID hash
// so shapes stay independent of scheduling timing. Machine-failure storms —
// internal/faults campaigns scaled to the cluster with CampaignFor — land
// mid-replay through the faults.Target interface: NodeDown crashes agents,
// PartialWorkerFailure makes grants bounce as launch failures, SlowMachine
// stretches holds. Per-class admission and demand-to-grant percentiles, SLO
// attainment, shed and preemption rates, and per-phase (peak / trough /
// storm) utilization land in the `replay` section of BENCH_scale.json.

import (
	"math/rand"

	"repro/internal/appmaster"
	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultReplayConfig is the paper-scale replay: 5,000 machines, two
// 100-second simulated days of diurnal traffic (300 sessions/s day-average,
// ±60% swing) from a 1,000,000-tenant population, heavy-tailed job widths
// (bounded-Pareto, up to 96 containers) and hold times (2–60 s), two 5%
// failure storms — one at the first day's peak, one in the second day's
// trough — and one mid-run master failover.
func DefaultReplayConfig() Config {
	c := DefaultConfig()
	c.Apps = 0
	c.UnitsPerApp = 1
	c.ContainersPerUnit = 1
	c.FailoverEvery = 0 // machine failures come from storms, not background churn
	c.Replay = true
	c.GatewayUsers = 1_000_000
	c.GatewayHotTenants = 200
	c.GatewayHotSharePct = 20
	c.GatewayServicePct = 20
	c.ReplayDays = 2
	c.ReplayDayLength = 100 * sim.Second
	c.ReplaySessionsPerSec = 300
	c.ReplayAmplitudePct = 60
	c.ReplayBurstMean = 2.2
	c.ReplayBurstGap = 200 * sim.Millisecond
	c.ReplayWidthMax = 96
	c.ReplayWidthAlpha = 1.15
	c.ReplayHoldAlpha = 1.1
	c.ReplayHoldMin = 2 * sim.Second
	c.ReplayHoldMax = 60 * sim.Second
	c.ReplayStormAt = []sim.Time{30 * sim.Second, 170 * sim.Second}
	c.ReplayStormPct = 5
	c.ReplayStormWindow = 5 * sim.Second
	c.ReplayStormDowntime = 8 * sim.Second
	c.ReplaySlowFactor = 4
	c.ServiceSLOMS = 100
	c.BatchSLOMS = 5_000
	c.FullSyncEvery = 30 * sim.Second
	c.CheckInvariants = true
	c.MasterFailoverAt = []sim.Time{120 * sim.Second}
	return c
}

// SmokeReplayConfig is the CI-sized replay: 100 machines, two 40-second
// days at 25 sessions/s, still through two storms and a master failover.
func SmokeReplayConfig() Config {
	c := DefaultReplayConfig()
	c.Racks, c.MachinesPerRack = 10, 10
	c.GatewayUsers = 50_000
	c.GatewayHotTenants = 50
	c.ReplayDayLength = 40 * sim.Second
	c.ReplaySessionsPerSec = 25
	c.ReplayWidthMax = 24
	c.ReplayHoldMin = sim.Second
	c.ReplayHoldMax = 20 * sim.Second
	c.ReplayStormAt = []sim.Time{12 * sim.Second, 68 * sim.Second}
	c.MasterFailoverAt = []sim.Time{48 * sim.Second}
	c.Horizon = 4 * sim.Minute
	return c
}

// replayLaunchFailDelay is how long a job master takes to detect that a
// broken machine failed to launch its workers before it returns the grant
// and re-demands elsewhere.
const replayLaunchFailDelay = 150 * sim.Millisecond

// replaySampleEvery is the per-phase utilization sampling period.
const replaySampleEvery = 500 * sim.Millisecond

// Diurnal phases. Peak is the quarter-day around the sinusoid's maximum,
// trough the quarter around its minimum; storm windows override both.
const (
	rpPeak = iota
	rpTrough
	rpStorm
	rpNumPhases
)

type rpPhaseAcc struct {
	samples  int
	cpu, mem float64 // sums of planned/total ratios
}

// rpState is the replay-mode workload state.
type rpState struct {
	h *harness
	// rng drives the arrival process (session times, tenants, burst shapes);
	// frng drives the fault storms. Separate streams — and hash-derived job
	// shapes — keep the workload reproducible even if one consumer changes.
	rng  *rand.Rand
	frng *rand.Rand

	arr   trace.DiurnalRate
	burst trace.BurstSessions
	width trace.BoundedPareto
	holdD trace.BoundedPareto

	// end is the generator cutoff (start + days × day length); genDone is
	// set when the arrival process passes it; pendingBurst counts burst
	// submissions scheduled but not yet fired.
	end          sim.Time
	genDone      bool
	pendingBurst int
	sessions     uint64
	subPeak      int
	subTrough    int

	// subAt records each submission's instant, indexed by the sequence
	// number embedded in the job ID, for per-class admission latency.
	subAt []sim.Time

	admission   [gateway.NumClasses]*metrics.Histogram
	d2g         [gateway.NumClasses]*metrics.Histogram
	d2gN, d2gOK [gateway.NumClasses]int
	jobs        [gateway.NumClasses]int
	grants      [gateway.NumClasses]uint64
	revokes     [gateway.NumClasses]uint64

	// Per-machine fault state, indexed by interned machine ID. broken
	// machines bounce grants as launch failures; slow machines stretch
	// holds by their factor.
	broken      []bool
	slow        []float64
	launchFails uint64
	slowHeld    uint64

	stormPlan    []faults.Injection
	stormSkipped int
	stormWindows [][2]sim.Time
	killed       int
	brokenN      int
	slowedN      int

	phase [rpNumPhases]rpPhaseAcc
}

func newRPState(h *harness, machines int) *rpState {
	cfg := h.cfg
	rp := &rpState{
		h:    h,
		rng:  rand.New(rand.NewSource(cfg.Seed + 3)),
		frng: rand.New(rand.NewSource(cfg.Seed + 4)),
		arr: trace.DiurnalRate{
			BaseRatePerSec: cfg.ReplaySessionsPerSec,
			AmplitudePct:   cfg.ReplayAmplitudePct,
			Day:            cfg.ReplayDayLength,
		},
		burst:  trace.BurstSessions{MeanJobs: cfg.ReplayBurstMean, MeanGap: cfg.ReplayBurstGap},
		broken: make([]bool, machines),
		slow:   make([]float64, machines),
	}
	walpha := cfg.ReplayWidthAlpha
	if walpha <= 0 {
		walpha = 1.15
	}
	wmax := cfg.ReplayWidthMax
	if wmax < 1 {
		wmax = 1
	}
	rp.width = trace.BoundedPareto{Alpha: walpha, Min: 1, Max: float64(wmax)}
	halpha := cfg.ReplayHoldAlpha
	if halpha <= 0 {
		halpha = 1.1
	}
	hmin, hmax := cfg.ReplayHoldMin, cfg.ReplayHoldMax
	if hmin <= 0 {
		hmin = sim.Second
	}
	if hmax < hmin {
		hmax = hmin
	}
	rp.holdD = trace.BoundedPareto{Alpha: halpha, Min: float64(hmin), Max: float64(hmax)}
	for cl := gateway.Class(0); cl < gateway.NumClasses; cl++ {
		rp.admission[cl] = h.reg.Histogram("scale.rp_admission_ms." + cl.QuotaGroup())
		rp.d2g[cl] = h.reg.Histogram("scale.rp_d2g_ms." + cl.QuotaGroup())
	}
	return rp
}

func (rp *rpState) downtime() sim.Time {
	if d := rp.h.cfg.ReplayStormDowntime; d > 0 {
		return d
	}
	return 8 * sim.Second
}

// scheduleReplay arms the storms and starts the diurnal session generator.
func (h *harness) scheduleReplay() {
	rp := h.rp
	cfg := h.cfg
	start := h.eng.Now()
	rp.end = start + sim.Time(cfg.ReplayDays)*cfg.ReplayDayLength

	// Failure storms: every random draw happens now, on the dedicated fault
	// stream, so storm placement cannot perturb the arrival process (and
	// vice versa).
	for _, at := range cfg.ReplayStormAt {
		camp := faults.CampaignFor(h.top.Size(), cfg.ReplayStormPct, cfg.ReplaySlowFactor)
		camp.Start = at
		camp.Window = cfg.ReplayStormWindow
		plan, skipped := faults.ApplyTo(replayTarget{h}, camp)
		rp.stormPlan = append(rp.stormPlan, plan...)
		rp.stormSkipped += skipped
		rp.stormWindows = append(rp.stormWindows,
			[2]sim.Time{at, at + camp.Window + rp.downtime()})
	}

	h.eng.Every(replaySampleEvery, rp.sampleUtil)

	// Open-loop session generator: each firing submits one tenant's burst
	// (gaps drawn up front, jobs scheduled at absolute instants) and chains
	// the next arrival through the thinned diurnal process.
	var fire func()
	fire = func() {
		rp.sessions++
		tenant := rp.pickTenant()
		size := rp.burst.SampleSize(rp.rng)
		at := h.eng.Now()
		for k := 0; k < size; k++ {
			if k > 0 {
				at += rp.burst.SampleGap(rp.rng)
			}
			rp.pendingBurst++
			h.eng.At(at, func() { rp.submitOne(tenant) })
		}
		next := rp.arr.NextArrival(rp.rng, h.eng.Now())
		if next >= rp.end {
			rp.genDone = true
			return
		}
		h.eng.At(next, fire)
	}
	first := rp.arr.NextArrival(rp.rng, start)
	if first >= rp.end {
		rp.genDone = true
		return
	}
	h.eng.At(first, fire)
}

// pickTenant mirrors the gateway generator's population skew on the
// replay-private stream: a heavy-hitter set plus a uniform long tail.
func (rp *rpState) pickTenant() int {
	cfg := rp.h.cfg
	if cfg.GatewayHotTenants > 0 && cfg.GatewayHotSharePct > 0 &&
		rp.rng.Intn(100) < cfg.GatewayHotSharePct {
		return rp.rng.Intn(cfg.GatewayHotTenants)
	}
	return rp.rng.Intn(cfg.GatewayUsers)
}

func (rp *rpState) submitOne(tenant int) {
	h := rp.h
	rp.pendingBurst--
	i := h.gwSubmitted
	h.gwSubmitted++
	now := h.eng.Now()
	rp.subAt = append(rp.subAt, now)
	switch rp.dayPhase(now) {
	case rpPeak:
		rp.subPeak++
	case rpTrough:
		rp.subTrough++
	}
	class := gateway.ClassBatch
	if tenant%100 < h.cfg.GatewayServicePct {
		class = gateway.ClassService
	}
	h.gw.Submit(gateway.Job{
		ID:     gwName("rp-", i, 7),
		Tenant: gwName("u-", tenant, 7),
		Class:  class,
	})
}

// rpSeq parses the submission sequence number out of an "rp-0001234" job ID.
func rpSeq(id string) int {
	if len(id) < 4 || id[0] != 'r' || id[1] != 'p' || id[2] != '-' {
		return -1
	}
	n := 0
	for i := 3; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// hashU turns 21 hash bits into a quantile in [0, 1).
func hashU(bits uint64) float64 {
	return float64(bits&((1<<21)-1)) / float64(1<<21)
}

// spawnReplayJob is the gateway's OnRegistered callback in replay mode: it
// observes per-class admission latency and starts the job's application
// master with hash-derived heavy-tailed width and hold time.
func (h *harness) spawnReplayJob(j gateway.Job) {
	rp := h.rp
	now := h.eng.Now()
	if seq := rpSeq(j.ID); seq >= 0 && seq < len(rp.subAt) {
		rp.admission[j.Class].Observe(float64(now-rp.subAt[seq]) / float64(sim.Millisecond))
	}
	rp.jobs[j.Class]++
	mix := jobMix(j.ID)
	w := int(rp.width.Quantile(hashU(mix)))
	if w < 1 {
		w = 1
	}
	hold := sim.Time(rp.holdD.Quantile(hashU(mix >> 21)))
	prio := 3
	if j.Class == gateway.ClassService {
		prio = 1
	}
	sizeIdx := int((mix >> 8) % 3)
	units := []resource.ScheduleUnit{{
		ID: 1, Priority: prio, Size: unitSize(sizeIdx), MaxCount: w,
	}}
	app := &scaleApp{
		h: h, name: j.ID, remaining: w, hold: hold, class: j.Class,
		pendingReq: make([]sim.Time, 2),
	}
	h.apps = append(h.apps, app)
	fullSync := h.cfg.FullSyncEvery
	if fullSync == 0 {
		fullSync = 10 * sim.Second
	}
	app.am = appmaster.New(appmaster.Config{
		App: j.ID, QuotaGroup: j.Class.QuotaGroup(), Units: units,
		FullSyncInterval: fullSync,
	}, h.eng, h.net, h.top, appmaster.Callbacks{
		OnGrant:  app.onGrant,
		OnRevoke: app.onRevoke,
	})
	machines := h.top.Machines()
	racks := h.top.Racks()
	h.eng.PostFunc(sim.Millisecond, func() {
		var hints []resource.LocalityHint
		rest := w
		pick := mix + 2654435761
		switch pick % 8 {
		case 0:
			hints = append(hints, resource.LocalityHint{
				Type: resource.LocalityMachine, Value: machines[pick>>16%uint64(len(machines))], Count: 1,
			})
			rest--
		case 1:
			hints = append(hints, resource.LocalityHint{
				Type: resource.LocalityRack, Value: racks[pick>>16%uint64(len(racks))], Count: 1,
			})
			rest--
		}
		if rest > 0 {
			hints = append(hints, resource.LocalityHint{Type: resource.LocalityCluster, Count: rest})
		}
		app.pendingReq[1] = h.eng.Now()
		app.am.Request(1, hints...)
	})
}

func (rp *rpState) observeD2G(c gateway.Class, ms float64) {
	rp.d2g[c].Observe(ms)
	rp.d2gN[c]++
	if ms <= rp.h.classSLOMS(c) {
		rp.d2gOK[c]++
	}
}

// grant is the replay branch of scaleApp.onGrant: broken machines bounce
// the grant as a launch failure, slow machines stretch the hold, and
// ordinary grants hold-then-return like the gateway churn.
func (rp *rpState) grant(a *scaleApp, unitID int, machine int32, count int) {
	h := rp.h
	rp.grants[a.class] += uint64(count)
	if rp.broken[machine] {
		// PartialWorkerFailure: the machine accepted the containers but its
		// corrupted disks refuse to launch workers. The job master notices
		// the failed launch, returns the grant, and re-demands elsewhere.
		rp.launchFails += uint64(count)
		h.eng.PostFunc(replayLaunchFailDelay, func() {
			n := count
			if held := a.am.Held(unitID, machine); held < n {
				n = held
			}
			if n <= 0 {
				return
			}
			a.am.ReturnContainers(unitID, machine, n)
			if a.done {
				return
			}
			if a.pendingReq[unitID] == 0 {
				a.pendingReq[unitID] = h.eng.Now()
			}
			a.am.Request(unitID, resource.LocalityHint{Type: resource.LocalityCluster, Count: n})
		})
		return
	}
	hold := a.hold
	if f := rp.slow[machine]; f > 1 {
		hold = sim.Time(float64(hold) * f)
		rp.slowHeld += uint64(count)
	}
	h.eng.PostFunc(hold, func() {
		n := count
		if held := a.am.Held(unitID, machine); held < n {
			n = held
		}
		if n <= 0 {
			return
		}
		a.am.ReturnContainers(unitID, machine, n)
		a.remaining -= n
		if a.remaining <= 0 && !a.done {
			a.done = true
			a.am.Unregister()
			h.completed++
			h.names = append(h.names, a.name)
			h.gw.JobCompleted(a.name)
		}
	})
}

// dayPhase classifies an instant against the diurnal cycle alone: the
// quarter-day around the sinusoid's peak, the quarter around its trough, or
// neither (-1, the shoulders).
func (rp *rpState) dayPhase(t sim.Time) int {
	day := rp.h.cfg.ReplayDayLength
	if day <= 0 {
		return -1
	}
	p := t % day
	switch {
	case p >= day/8 && p < 3*day/8:
		return rpPeak
	case p >= 5*day/8 && p < 7*day/8:
		return rpTrough
	}
	return -1
}

// phaseOf adds the storm override: instants inside a storm window (plus its
// downtime, while effects persist) count as storm regardless of day phase.
func (rp *rpState) phaseOf(t sim.Time) int {
	for _, w := range rp.stormWindows {
		if t >= w[0] && t < w[1] {
			return rpStorm
		}
	}
	if t >= rp.end {
		return -1
	}
	return rp.dayPhase(t)
}

func (rp *rpState) sampleUtil() {
	h := rp.h
	idx := rp.phaseOf(h.eng.Now())
	if idx < 0 {
		return
	}
	s := h.primarySched()
	if s == nil {
		return // interregnum: no authoritative ledger to sample
	}
	total := s.TotalCapacity()
	if total.CPUMilli() <= 0 || total.MemoryMB() <= 0 {
		return
	}
	planned := s.PlannedTotal()
	acc := &rp.phase[idx]
	acc.samples++
	acc.cpu += float64(planned.CPUMilli()) / float64(total.CPUMilli())
	acc.mem += float64(planned.MemoryMB()) / float64(total.MemoryMB())
}

// replayTarget adapts the harness to faults.Target so storm campaigns drive
// the paper-scale agents directly.
type replayTarget struct{ h *harness }

func (t replayTarget) Rand() *rand.Rand          { return t.h.rp.frng }
func (t replayTarget) At(at sim.Time, fn func()) { t.h.eng.At(at, fn) }
func (t replayTarget) Machines() []string        { return t.h.top.Machines() }

func (t replayTarget) KillMachine(m string) {
	h := t.h
	a := h.agents[h.top.MachineID(m)]
	if !a.Up() {
		return
	}
	h.machineCrashes++
	h.rp.killed++
	a.CrashMachine()
	h.eng.After(h.rp.downtime(), a.RestartMachine)
}

func (t replayTarget) BreakMachine(m string) {
	h := t.h
	id := h.top.MachineID(m)
	h.rp.broken[id] = true
	h.agents[id].SetBroken(true)
	h.rp.brokenN++
	h.eng.After(h.rp.downtime(), func() {
		h.rp.broken[id] = false
		h.agents[id].SetBroken(false)
	})
}

func (t replayTarget) SlowMachine(m string, factor float64) {
	h := t.h
	id := h.top.MachineID(m)
	h.rp.slow[id] = factor
	h.rp.slowedN++
	h.eng.After(h.rp.downtime(), func() { h.rp.slow[id] = 1 })
}

func (t replayTarget) KillPrimaryMaster() { t.h.crashPrimary(t.h.mcfg) }

// ReplayClassStats is one service class's replay measurements.
type ReplayClassStats struct {
	Jobs               int     `json:"jobs"`
	AdmissionP50MS     float64 `json:"admission_p50_ms"`
	AdmissionP99MS     float64 `json:"admission_p99_ms"`
	AdmissionMaxMS     float64 `json:"admission_max_ms"`
	DemandToGrantP50MS float64 `json:"demand_to_grant_p50_ms"`
	DemandToGrantP99MS float64 `json:"demand_to_grant_p99_ms"`
	DemandToGrantMaxMS float64 `json:"demand_to_grant_max_ms"`
	SLOMS              float64 `json:"slo_ms"`
	SLOAttainedPct     float64 `json:"slo_attained_pct"`
	Grants             uint64  `json:"grants"`
	Revokes            uint64  `json:"revokes"`
	// PreemptionPct is revokes per hundred grants.
	PreemptionPct float64 `json:"preemption_pct"`
	// ShedPct is the class's gateway shed share of its submissions.
	ShedPct float64 `json:"shed_pct"`
}

// ReplayPhaseStats is mean cluster utilization over one diurnal phase.
type ReplayPhaseStats struct {
	Samples    int     `json:"samples"`
	CPUUtilPct float64 `json:"cpu_util_pct"`
	MemUtilPct float64 `json:"mem_util_pct"`
}

// ReplayStats is the `replay` section of BENCH_scale.json.
type ReplayStats struct {
	Days              int     `json:"days"`
	DayLengthSec      float64 `json:"day_length_sec"`
	Sessions          uint64  `json:"sessions"`
	Submissions       int     `json:"submissions"`
	SubmissionsPeak   int     `json:"submissions_peak"`
	SubmissionsTrough int     `json:"submissions_trough"`
	// Burst shape as the gateway's session tracker measured it.
	MeanBurstLen float64 `json:"mean_burst_len,omitempty"`
	MaxBurstLen  int     `json:"max_burst_len,omitempty"`

	Storms            int    `json:"storms"`
	Injections        int    `json:"injections"`
	InjectionsSkipped int    `json:"injections_skipped,omitempty"`
	MachinesKilled    int    `json:"machines_killed"`
	MachinesBroken    int    `json:"machines_broken"`
	MachinesSlowed    int    `json:"machines_slowed"`
	LaunchFailures    uint64 `json:"launch_failures"`
	SlowHolds         uint64 `json:"slow_holds"`

	// ShedPct is the overall gateway shed rate in percent.
	ShedPct float64 `json:"shed_pct"`

	Peak   ReplayPhaseStats `json:"peak"`
	Trough ReplayPhaseStats `json:"trough"`
	Storm  ReplayPhaseStats `json:"storm"`

	Service ReplayClassStats `json:"service"`
	Batch   ReplayClassStats `json:"batch"`

	// DecisionHash pins the gateway's deterministic decision stream (must
	// be byte-identical across shard counts).
	DecisionHash string `json:"decision_hash"`
}

func (rp *rpState) snapshot(h *harness) *ReplayStats {
	cfg := h.cfg
	gw := h.gw.Snapshot()
	rs := &ReplayStats{
		Days:              cfg.ReplayDays,
		DayLengthSec:      cfg.ReplayDayLength.Seconds(),
		Sessions:          rp.sessions,
		Submissions:       h.gwSubmitted,
		SubmissionsPeak:   rp.subPeak,
		SubmissionsTrough: rp.subTrough,
		MeanBurstLen:      gw.MeanSessionLen,
		MaxBurstLen:       gw.MaxSessionLen,
		Storms:            len(cfg.ReplayStormAt),
		Injections:        len(rp.stormPlan),
		InjectionsSkipped: rp.stormSkipped,
		MachinesKilled:    rp.killed,
		MachinesBroken:    rp.brokenN,
		MachinesSlowed:    rp.slowedN,
		LaunchFailures:    rp.launchFails,
		SlowHolds:         rp.slowHeld,
		ShedPct:           gw.ShedRate * 100,
		DecisionHash:      gw.DecisionHash,
	}
	for i := 0; i < rpNumPhases; i++ {
		acc := rp.phase[i]
		ps := ReplayPhaseStats{Samples: acc.samples}
		if acc.samples > 0 {
			ps.CPUUtilPct = 100 * acc.cpu / float64(acc.samples)
			ps.MemUtilPct = 100 * acc.mem / float64(acc.samples)
		}
		switch i {
		case rpPeak:
			rs.Peak = ps
		case rpTrough:
			rs.Trough = ps
		case rpStorm:
			rs.Storm = ps
		}
	}
	rs.Service = rp.classStats(h, gateway.ClassService, gw.Service)
	rs.Batch = rp.classStats(h, gateway.ClassBatch, gw.Batch)
	return rs
}

func (rp *rpState) classStats(h *harness, c gateway.Class, gcs gateway.ClassStats) ReplayClassStats {
	adm, d2g := rp.admission[c], rp.d2g[c]
	cs := ReplayClassStats{
		Jobs:               rp.jobs[c],
		AdmissionP50MS:     adm.Quantile(0.5),
		AdmissionP99MS:     adm.Quantile(0.99),
		AdmissionMaxMS:     adm.Max(),
		DemandToGrantP50MS: d2g.Quantile(0.5),
		DemandToGrantP99MS: d2g.Quantile(0.99),
		DemandToGrantMaxMS: d2g.Max(),
		SLOMS:              h.classSLOMS(c),
		Grants:             rp.grants[c],
		Revokes:            rp.revokes[c],
	}
	if rp.d2gN[c] > 0 {
		cs.SLOAttainedPct = 100 * float64(rp.d2gOK[c]) / float64(rp.d2gN[c])
	}
	if cs.Grants > 0 {
		cs.PreemptionPct = 100 * float64(cs.Revokes) / float64(cs.Grants)
	}
	if gcs.Submitted > 0 {
		shed := gcs.ShedRateLimit + gcs.ShedTenantQueue + gcs.ShedBacklog
		cs.ShedPct = 100 * float64(shed) / float64(gcs.Submitted)
	}
	return cs
}
