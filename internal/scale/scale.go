// Package scale is the paper-scale stress/soak harness: it boots the full
// Fuxi control plane — FuxiMaster, one FuxiAgent per machine, and a churning
// population of application masters — at the 5,000-machine footprint of the
// paper's production cluster (§5) and measures what the toy-sized
// experiments cannot: scheduling-decision throughput, demand-to-grant
// latency in virtual time, and allocation pressure per decision. The same
// workload can be replayed against the pre-optimization scheduler
// (Options.LegacyScan) so every optimization PR reports its speedup against
// a baseline measured in the same build.
package scale

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/agent"
	"repro/internal/appmaster"
	"repro/internal/lockservice"
	"repro/internal/master"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Config sizes one stress run.
type Config struct {
	// Racks × MachinesPerRack is the cluster footprint; the paper's
	// production cluster is 5,000 machines (125 racks of 40).
	Racks           int `json:"racks"`
	MachinesPerRack int `json:"machines_per_rack"`

	// Apps application masters arrive uniformly over ArrivalWindow; each
	// registers UnitsPerApp ScheduleUnits and demands ContainersPerUnit
	// containers per unit. Apps × UnitsPerApp is the schedule-unit churn
	// (the acceptance target is ≥ 100k).
	Apps              int `json:"apps"`
	UnitsPerApp       int `json:"units_per_app"`
	ContainersPerUnit int `json:"containers_per_unit"`

	// HoldTime is how long a granted container is held before being
	// returned (each return triggers the event-driven free-up path).
	HoldTime      sim.Time `json:"hold_time_us"`
	ArrivalWindow sim.Time `json:"arrival_window_us"`

	// FailoverEvery crashes a random machine at this period (0 disables);
	// the machine restarts after FailoverDowntime. Downtime must exceed
	// the master's heartbeat timeout for the crash to surface as a
	// MachineDown revocation wave.
	FailoverEvery    sim.Time `json:"failover_every_us"`
	FailoverDowntime sim.Time `json:"failover_downtime_us"`

	// Horizon hard-stops the simulation even if apps are still running.
	Horizon sim.Time `json:"horizon_us"`
	Seed    int64    `json:"seed"`

	// LegacyScan replays the workload against the original linear-scan
	// locality tree (the pre-optimization baseline).
	LegacyScan bool `json:"legacy_scan"`

	// WallBudget bounds real elapsed time (0 = unlimited): the run stops
	// at the next slice boundary once exceeded and throughput is computed
	// over the work actually done. It exists so the slow baseline can be
	// rate-measured at full scale without running to completion.
	WallBudget time.Duration `json:"wall_budget_ns"`
}

// DefaultConfig is the paper-scale run: 5,000 machines across 125 racks and
// 100k schedule units (2,500 apps × 40 units) churning through
// submit/grant/return with a machine failover every 2 simulated seconds.
func DefaultConfig() Config {
	return Config{
		Racks:             125,
		MachinesPerRack:   40,
		Apps:              2500,
		UnitsPerApp:       40,
		ContainersPerUnit: 3,
		// Peak concurrent demand ≈ Apps/ArrivalWindow × units × containers
		// × HoldTime ≈ 128k containers against ~103k of cluster capacity:
		// the run crosses into the paper's saturated regime (§5.2 reports
		// >95% utilization), so demand queues in the locality tree and
		// every return drives the event-driven free-up path.
		HoldTime:          15 * sim.Second,
		ArrivalWindow:     35 * sim.Second,
		FailoverEvery:     2 * sim.Second,
		FailoverDowntime:  8 * sim.Second,
		Horizon:           10 * sim.Minute,
		Seed:              1,
	}
}

// SmokeConfig is the CI-sized run: 100 machines, 2,000 schedule units.
func SmokeConfig() Config {
	c := DefaultConfig()
	c.Racks, c.MachinesPerRack = 10, 10
	c.Apps, c.UnitsPerApp = 100, 20
	c.ArrivalWindow = 10 * sim.Second
	c.Horizon = 2 * sim.Minute
	return c
}

// Result is one run's measurement, serialized into BENCH_scale.json.
type Result struct {
	Config   Config `json:"config"`
	Machines int    `json:"machines"`
	Units    int    `json:"units"`

	// Decisions is the number of container-level scheduling decisions the
	// master materialized (grants + revocations observed by the apps).
	Decisions uint64 `json:"decisions"`
	Grants    uint64 `json:"grants"`
	Revokes   uint64 `json:"revokes"`

	WallSeconds     float64 `json:"wall_seconds"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`

	// Demand-to-grant latency in virtual (simulated) milliseconds: from a
	// DemandUpdate leaving an application master to the first resulting
	// grant arriving back (paper Figure 9 reports mean 0.88 ms).
	LatencyMeanMS float64 `json:"latency_mean_ms"`
	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
	LatencyMaxMS  float64 `json:"latency_max_ms"`

	AllocsPerDecision float64 `json:"allocs_per_decision"`
	EventsFired       uint64  `json:"events_fired"`
	MessagesSent      uint64  `json:"messages_sent"`
	MessageBatches    uint64  `json:"message_batches"`

	CompletedApps int      `json:"completed_apps"`
	SimSeconds    float64  `json:"sim_seconds"`
	Invariants    []string `json:"invariant_violations,omitempty"`
}

// CompareResult pairs an optimized run with its same-build baseline.
type CompareResult struct {
	Baseline  Result  `json:"baseline"`
	Optimized Result  `json:"optimized"`
	Speedup   float64 `json:"speedup"`
}

// scaleApp drives one application master's churn: request, hold, return,
// re-request on revocation, unregister when every container completed one
// hold cycle.
type scaleApp struct {
	h         *harness
	am        *appmaster.AM
	name      string
	remaining int
	done      bool
	// pendingReq records, per unit, when the oldest unanswered demand was
	// sent, for the demand-to-grant latency histogram.
	pendingReq map[int]sim.Time
}

type harness struct {
	cfg    Config
	eng    *sim.Engine
	net    *transport.Net
	top    *topology.Topology
	agents []*agent.Agent
	fm     *master.Master
	reg    *metrics.Registry
	rng    *rand.Rand

	latency   *metrics.Histogram
	grants    uint64
	revokes   uint64
	completed int
}

// Run executes one stress run and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if cfg.Racks <= 0 || cfg.MachinesPerRack <= 0 || cfg.Apps <= 0 || cfg.UnitsPerApp <= 0 {
		return nil, fmt.Errorf("scale: non-positive cluster or workload dimension")
	}
	top, err := topology.Build(topology.Spec{
		Racks: cfg.Racks, MachinesPerRack: cfg.MachinesPerRack,
		MachineCapacity: topology.PaperTestbedMachine(),
	})
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cfg.Seed)
	// Fixed latency, no jitter: same-instant messages then deliver in send
	// order, which the incremental protocol's happy path assumes (an app's
	// RegisterApp must precede its first DemandUpdate; reordering is legal
	// but falls back to the slow full-sync repair path).
	net := transport.NewNet(eng)
	lock := lockservice.New(eng)
	ckpt := master.NewCheckpointStore()
	reg := metrics.NewRegistry()

	mcfg := master.DefaultConfig("fm-scale")
	mcfg.Sched.LegacyScan = cfg.LegacyScan
	h := &harness{
		cfg: cfg, eng: eng, net: net, top: top, reg: reg,
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
		latency: reg.Histogram("scale.demand_to_grant_ms"),
	}
	h.fm = master.NewMaster(mcfg, eng, net, lock, top, ckpt, reg)
	eng.Run(10 * sim.Millisecond) // let the election settle

	acfg := agent.DefaultConfig()
	for _, m := range top.Machines() {
		h.agents = append(h.agents, agent.New(acfg, eng, net, top.Machine(m)))
	}

	// Schedule app arrivals uniformly across the window.
	for i := 0; i < cfg.Apps; i++ {
		at := eng.Now() + sim.Time(int64(cfg.ArrivalWindow)*int64(i)/int64(cfg.Apps))
		idx := i
		eng.At(at, func() { h.spawnApp(idx) })
	}

	// Failover churn: crash a random up machine, restart after the
	// downtime (long enough for the heartbeat timeout to declare it dead
	// and revoke its grants).
	if cfg.FailoverEvery > 0 {
		eng.Every(cfg.FailoverEvery, func() {
			a := h.agents[h.rng.Intn(len(h.agents))]
			if !a.Up() {
				return
			}
			a.CrashMachine()
			eng.After(cfg.FailoverDowntime, a.RestartMachine)
		})
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	slice := 500 * sim.Millisecond
	for eng.Now() < cfg.Horizon && h.completed < cfg.Apps {
		eng.Run(eng.Now() + slice)
		if cfg.WallBudget > 0 && time.Since(start) > cfg.WallBudget {
			break
		}
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	res := &Result{
		Config:         cfg,
		Machines:       top.Size(),
		Units:          cfg.Apps * cfg.UnitsPerApp,
		Grants:         h.grants,
		Revokes:        h.revokes,
		Decisions:      h.grants + h.revokes,
		WallSeconds:    wall,
		LatencyMeanMS:  h.latency.Mean(),
		LatencyP50MS:   h.latency.Quantile(0.5),
		LatencyP99MS:   h.latency.Quantile(0.99),
		LatencyMaxMS:   h.latency.Max(),
		EventsFired:    eng.Fired(),
		MessagesSent:   net.Stats().Sent,
		MessageBatches: net.Stats().Batches,
		CompletedApps:  h.completed,
		SimSeconds:     eng.Now().Seconds(),
	}
	if res.Decisions > 0 {
		res.DecisionsPerSec = float64(res.Decisions) / wall
		res.AllocsPerDecision = float64(after.Mallocs-before.Mallocs) / float64(res.Decisions)
	}
	if s := h.fm.Scheduler(); s != nil {
		res.Invariants = s.CheckInvariants()
	}
	return res, nil
}

// RunCompare measures the optimized scheduler and the legacy baseline on
// the same workload, baseline rate-limited by baselineBudget wall time.
func RunCompare(cfg Config, baselineBudget time.Duration) (*CompareResult, error) {
	opt := cfg
	opt.LegacyScan = false
	optRes, err := Run(opt)
	if err != nil {
		return nil, err
	}
	base := cfg
	base.LegacyScan = true
	base.WallBudget = baselineBudget
	baseRes, err := Run(base)
	if err != nil {
		return nil, err
	}
	out := &CompareResult{Baseline: *baseRes, Optimized: *optRes}
	if baseRes.DecisionsPerSec > 0 {
		out.Speedup = optRes.DecisionsPerSec / baseRes.DecisionsPerSec
	}
	return out, nil
}

// unitSize varies container shapes across units so the multi-dimensional
// matcher sees heterogeneous requests.
func unitSize(i int) resource.Vector {
	switch i % 3 {
	case 0:
		return resource.New(500, 2048)
	case 1:
		return resource.New(1000, 4096)
	default:
		return resource.New(250, 1024)
	}
}

func (h *harness) spawnApp(idx int) {
	cfg := h.cfg
	name := fmt.Sprintf("scale-app-%04d", idx)
	units := make([]resource.ScheduleUnit, 0, cfg.UnitsPerApp)
	for u := 0; u < cfg.UnitsPerApp; u++ {
		units = append(units, resource.ScheduleUnit{
			ID:       u + 1,
			Priority: 1 + (idx+u)%4,
			Size:     unitSize(idx + u),
			MaxCount: cfg.ContainersPerUnit,
		})
	}
	app := &scaleApp{
		h:          h,
		name:       name,
		remaining:  cfg.UnitsPerApp * cfg.ContainersPerUnit,
		pendingReq: make(map[int]sim.Time, cfg.UnitsPerApp),
	}
	app.am = appmaster.New(appmaster.Config{
		App: name, Units: units, FullSyncInterval: 10 * sim.Second,
	}, h.eng, h.net, h.top, appmaster.Callbacks{
		OnGrant:  app.onGrant,
		OnRevoke: app.onRevoke,
	})
	// Demand with a locality mix: some units pin a machine, some prefer a
	// rack, the rest are cluster-wide — exercising all three tree levels.
	// The demand follows registration after a registration round-trip's
	// worth of delay, mirroring how the example application masters behave.
	machines := h.top.Machines()
	racks := h.top.Racks()
	h.eng.After(sim.Millisecond, func() {
		for u := 1; u <= cfg.UnitsPerApp; u++ {
			var hints []resource.LocalityHint
			rest := cfg.ContainersPerUnit
			switch u % 10 {
			case 0:
				hints = append(hints, resource.LocalityHint{
					Type: resource.LocalityMachine, Value: machines[h.rng.Intn(len(machines))], Count: 1,
				})
				rest--
			case 1:
				hints = append(hints, resource.LocalityHint{
					Type: resource.LocalityRack, Value: racks[h.rng.Intn(len(racks))], Count: 1,
				})
				rest--
			}
			if rest > 0 {
				hints = append(hints, resource.LocalityHint{Type: resource.LocalityCluster, Count: rest})
			}
			app.pendingReq[u] = h.eng.Now()
			app.am.Request(u, hints...)
		}
	})
}

func (a *scaleApp) onGrant(unitID int, machine string, count int) {
	h := a.h
	h.grants += uint64(count)
	if at, ok := a.pendingReq[unitID]; ok {
		h.latency.Observe(float64(h.eng.Now()-at) / float64(sim.Millisecond))
		delete(a.pendingReq, unitID)
	}
	// Hold the containers, then return them; revoked containers skip the
	// return (they re-enter via onRevoke's re-request).
	h.eng.After(h.cfg.HoldTime, func() {
		n := count
		if held := a.am.Held(unitID, machine); held < n {
			n = held
		}
		if n <= 0 {
			return
		}
		a.am.ReturnContainers(unitID, machine, n)
		a.remaining -= n
		if a.remaining <= 0 && !a.done {
			a.done = true
			a.am.Unregister()
			h.completed++
		}
	})
}

func (a *scaleApp) onRevoke(unitID int, machine string, count int) {
	h := a.h
	h.revokes += uint64(count)
	// Failover took the containers mid-hold: restate the demand so the
	// churn completes (paper §3.1 step 7 — the JobMaster re-requests).
	if _, ok := a.pendingReq[unitID]; !ok {
		a.pendingReq[unitID] = h.eng.Now()
	}
	a.am.Request(unitID, resource.LocalityHint{Type: resource.LocalityCluster, Count: count})
}
