// Package scale is the paper-scale stress/soak harness: it boots the full
// Fuxi control plane — FuxiMaster, one FuxiAgent per machine, and a churning
// population of application masters — at the 5,000-machine footprint of the
// paper's production cluster (§5) and measures what the toy-sized
// experiments cannot: scheduling-decision throughput, demand-to-grant
// latency in virtual time, and allocation pressure per decision. The same
// workload can be replayed against the pre-optimization scheduler
// (Options.LegacyScan) so every optimization PR reports its speedup against
// a baseline measured in the same build.
//
// The harness also runs the paper's headline fault-tolerance scenario at
// full scale: true FuxiMaster crash/promote cycles (Config.MasterFailoverAt)
// with hot-standby lease takeover, checkpoint epoch bumps, soft-state
// rebuild from agent and application-master re-registrations, and the
// cluster-wide invariant checker (internal/invariant) attached to prove the
// rebuilt state equals the pre-crash truth.
package scale

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/agent"
	"repro/internal/appmaster"
	"repro/internal/gateway"
	"repro/internal/invariant"
	"repro/internal/lockservice"
	"repro/internal/master"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Config sizes one stress run.
type Config struct {
	// Racks × MachinesPerRack is the cluster footprint; the paper's
	// production cluster is 5,000 machines (125 racks of 40).
	Racks           int `json:"racks"`
	MachinesPerRack int `json:"machines_per_rack"`

	// Apps application masters arrive uniformly over ArrivalWindow; each
	// registers UnitsPerApp ScheduleUnits and demands ContainersPerUnit
	// containers per unit. Apps × UnitsPerApp is the schedule-unit churn
	// (the acceptance target is ≥ 100k).
	Apps              int `json:"apps"`
	UnitsPerApp       int `json:"units_per_app"`
	ContainersPerUnit int `json:"containers_per_unit"`

	// HoldTime is how long a granted container is held before being
	// returned (each return triggers the event-driven free-up path).
	HoldTime      sim.Time `json:"hold_time_us"`
	ArrivalWindow sim.Time `json:"arrival_window_us"`

	// FullSyncEvery is the application masters' periodic FullDemandSync
	// safety period (0 takes the classic 10s default). The steady-state
	// churn section widens it: the safety sync repairs loss, and the
	// lossless benchmark network makes a 10s cadence pure reconciliation
	// overhead.
	FullSyncEvery sim.Time `json:"full_sync_every_us,omitempty"`

	// FailoverEvery crashes a random machine at this period (0 disables);
	// the machine restarts after FailoverDowntime. Downtime must exceed
	// the master's heartbeat timeout for the crash to surface as a
	// MachineDown revocation wave.
	FailoverEvery    sim.Time `json:"failover_every_us"`
	FailoverDowntime sim.Time `json:"failover_downtime_us"`

	// MasterFailoverAt lists virtual times at which the active FuxiMaster
	// is crashed mid-run (empty disables). A hot standby then wins the
	// lock-service lease, bumps the checkpoint epoch, reloads hard state
	// and rebuilds soft state from agent and application-master
	// re-registrations; the crashed process restarts as the new standby so
	// repeated failovers alternate the pair. Stale-epoch messages from each
	// dead primary are fenced by the protocol's epoch stamps.
	MasterFailoverAt []sim.Time `json:"master_failover_at_us,omitempty"`

	// CheckInvariants attaches the cluster-wide invariant checker: the
	// scheduler conservation invariants are asserted every virtual second,
	// and when the run completes, the settled master/agent/app grant
	// ledgers and the checkpoint write budget are verified too.
	CheckInvariants bool `json:"check_invariants,omitempty"`

	// Horizon hard-stops the simulation even if apps are still running.
	Horizon sim.Time `json:"horizon_us"`
	Seed    int64    `json:"seed"`

	// Churn switches to the steady-state churn benchmark (see churn.go):
	// apps never complete — each returned container is immediately
	// re-demanded — and measurement starts only after ChurnWarmup, running
	// for ChurnMeasure of virtual time (Horizon should equal their sum).
	Churn        bool     `json:"churn,omitempty"`
	ChurnWarmup  sim.Time `json:"churn_warmup_us,omitempty"`
	ChurnMeasure sim.Time `json:"churn_measure_us,omitempty"`

	// LegacyScan replays the workload against the original linear-scan
	// locality tree (the pre-optimization baseline).
	LegacyScan bool `json:"legacy_scan"`

	// Shards > 1 runs the FuxiMaster scheduling core with sharded parallel
	// sweeps (master.Options.Shards); the decision stream is byte-identical
	// to Shards <= 1 by construction.
	Shards int `json:"shards,omitempty"`

	// ForceSteal routes every parallel scoring block through the
	// work-stealing handoff with a fresh per-block overlay
	// (master.Options.ForceSteal) — a measurement knob that isolates the
	// commit-ratio cost of stealing; decisions are unchanged.
	ForceSteal bool `json:"force_steal,omitempty"`

	// RecordDecisionHash accumulates an FNV-1a hash over the grant/revoke
	// stream observed by the application masters (classic and churn
	// workloads). The SMP lane compares it across shard counts as the
	// byte-identity witness for the committed decision stream.
	RecordDecisionHash bool `json:"record_decision_hash,omitempty"`

	// RoundWindow > 0 batches demand and returns into scheduling rounds of
	// this width (master.Config.BatchWindow) — the configuration under
	// which wide sweeps exist for the shards to parallelize.
	RoundWindow sim.Time `json:"round_window_us,omitempty"`

	// WallBudget bounds real elapsed time (0 = unlimited): the run stops
	// at the next slice boundary once exceeded and throughput is computed
	// over the work actually done. It exists so the slow baseline can be
	// rate-measured at full scale without running to completion.
	WallBudget time.Duration `json:"wall_budget_ns"`

	// GatewayUsers > 0 switches the workload to gateway mode: instead of a
	// fixed app schedule, an open-loop load generator simulating this many
	// distinct tenants submits GatewaySubmissions jobs through the
	// multi-tenant submission gateway (internal/gateway) spread over
	// ArrivalWindow; each registered job runs as an application master with
	// UnitsPerApp units of ContainersPerUnit containers held for HoldTime.
	// Apps is ignored in this mode.
	GatewayUsers       int `json:"gateway_users,omitempty"`
	GatewaySubmissions int `json:"gateway_submissions,omitempty"`
	// GatewayHotTenants is the size of the heavy-hitter set and
	// GatewayHotSharePct the percentage of submissions drawn from it (the
	// skew that makes per-tenant rate limiting bite: the uniform tail of a
	// million-user population rarely exceeds one job per tenant).
	GatewayHotTenants  int `json:"gateway_hot_tenants,omitempty"`
	GatewayHotSharePct int `json:"gateway_hot_share_pct,omitempty"`
	// GatewayServicePct is the percentage of tenant identities in the
	// latency-sensitive service class (the rest are batch).
	GatewayServicePct int `json:"gateway_service_pct,omitempty"`
	// GatewayLimits tunes the gateway (nil takes gateway.DefaultLimits).
	GatewayLimits *gateway.Limits `json:"gateway_limits,omitempty"`
	// RecordGatewayDecisions keeps the full admit/shed decision stream in
	// Result.GatewayDecisions (parity tests only — it is large).
	RecordGatewayDecisions bool `json:"-"`

	// Dataplane switches the workload to data-plane mode (see dataplane.go):
	// instead of synthetic hold/return churn, the jobs submitted through the
	// gateway are GraySort chains, Figure 6 DAG pipelines and long-running
	// streamline service residents, with locality demand resolved against
	// Pangu chunk placement and sampled kernel-level output verification.
	// Apps and the synthetic gateway load generator are ignored in this mode.
	Dataplane bool `json:"dataplane,omitempty"`
	// GraySortJobs jobs each sort GraySortDataMB of simulated input; the
	// input file's chunk count (GraySortDataMB / 256) is the width of every
	// stage in the job's map → sort → merge chain.
	GraySortJobs   int   `json:"graysort_jobs,omitempty"`
	GraySortDataMB int64 `json:"graysort_data_mb,omitempty"`
	// DAGJobs jobs run the paper's Figure 6 diamond (T1 → {T2,T3} → T4).
	DAGJobs int `json:"dag_jobs,omitempty"`
	// ServiceJobs long-running residents each hold ServiceWorkers containers
	// in the gateway's service class and run ServiceOps streamline operation
	// rounds, one every ServiceOpEvery.
	ServiceJobs    int      `json:"service_jobs,omitempty"`
	ServiceWorkers int      `json:"service_workers,omitempty"`
	ServiceOps     int      `json:"service_ops,omitempty"`
	ServiceOpEvery sim.Time `json:"service_op_every_us,omitempty"`
	// VerifyRecords is the per-map-task record count of the sampled GraySort
	// kernel verification (0 disables); every VerifySampleEvery-th job is
	// verified.
	VerifyRecords     int `json:"verify_records,omitempty"`
	VerifySampleEvery int `json:"verify_sample_every,omitempty"`
	// ServiceSLOMS / BatchSLOMS are the per-class demand-to-grant SLOs
	// (virtual milliseconds) the dataplane and replay sections report
	// attainment for.
	ServiceSLOMS float64 `json:"service_slo_ms,omitempty"`
	BatchSLOMS   float64 `json:"batch_slo_ms,omitempty"`

	// Replay switches the workload to trace-driven replay mode (see
	// replay.go): an Alibaba-cluster-trace-style synthetic day — diurnal
	// session arrivals over the GatewayUsers tenant population, correlated
	// per-tenant submission bursts, heavy-tailed job widths and hold
	// durations — played open-loop through the gateway and scheduler, with
	// machine-failure storms injected mid-replay through internal/faults
	// campaigns. Apps and the synthetic gateway generator are ignored.
	Replay bool `json:"replay_mode,omitempty"`
	// ReplayDays simulated days of ReplayDayLength each are generated; the
	// run then drains.
	ReplayDays      int      `json:"replay_days,omitempty"`
	ReplayDayLength sim.Time `json:"replay_day_length_us,omitempty"`
	// ReplaySessionsPerSec is the day-average session arrival rate;
	// ReplayAmplitudePct the sinusoidal diurnal modulation (peak = base ×
	// (1 + A/100), trough = base × (1 − A/100)).
	ReplaySessionsPerSec float64 `json:"replay_sessions_per_sec,omitempty"`
	ReplayAmplitudePct   float64 `json:"replay_amplitude_pct,omitempty"`
	// Each session is one tenant submitting a geometric burst of
	// ReplayBurstMean jobs spaced exponentially with mean ReplayBurstGap.
	ReplayBurstMean float64  `json:"replay_burst_mean,omitempty"`
	ReplayBurstGap  sim.Time `json:"replay_burst_gap_us,omitempty"`
	// Job widths (containers) are bounded-Pareto(ReplayWidthAlpha) on
	// [1, ReplayWidthMax]; container hold times bounded-Pareto
	// (ReplayHoldAlpha) on [ReplayHoldMin, ReplayHoldMax]. Both are drawn
	// from the job-ID hash, independent of scheduling timing.
	ReplayWidthMax   int      `json:"replay_width_max,omitempty"`
	ReplayWidthAlpha float64  `json:"replay_width_alpha,omitempty"`
	ReplayHoldAlpha  float64  `json:"replay_hold_alpha,omitempty"`
	ReplayHoldMin    sim.Time `json:"replay_hold_min_us,omitempty"`
	ReplayHoldMax    sim.Time `json:"replay_hold_max_us,omitempty"`
	// ReplayStormAt lists the start times of machine-failure storms: each
	// storm applies a faults.CampaignFor(machines, ReplayStormPct,
	// ReplaySlowFactor) campaign — NodeDown, PartialWorkerFailure,
	// SlowMachine in the paper's Table 3 ratio — spread over
	// ReplayStormWindow; every effect clears after ReplayStormDowntime.
	ReplayStormAt       []sim.Time `json:"replay_storm_at_us,omitempty"`
	ReplayStormPct      float64    `json:"replay_storm_pct,omitempty"`
	ReplayStormWindow   sim.Time   `json:"replay_storm_window_us,omitempty"`
	ReplayStormDowntime sim.Time   `json:"replay_storm_downtime_us,omitempty"`
	ReplaySlowFactor    float64    `json:"replay_slow_factor,omitempty"`

	// Chaos runs the workload under an adversarial network schedule (see
	// chaos.go): partition storms isolating agent groups, link flaps, delay
	// spikes, and an optional lock-service partition of the primary master —
	// faults the machine-crash modes above never produce, because crashed
	// processes stop talking whereas partitioned ones keep acting on stale
	// state. Results land in the `chaos` section of BENCH_scale.json.
	Chaos bool `json:"chaos,omitempty"`
	// ChaosPartitionAt lists partition-storm start times; the parallel
	// ChaosPartitionFor lists each storm's duration (default 5 s). Every
	// storm isolates ChaosPartitionPct percent of the machines (default 1
	// machine) from the rest of the control plane.
	ChaosPartitionAt  []sim.Time `json:"chaos_partition_at_us,omitempty"`
	ChaosPartitionFor []sim.Time `json:"chaos_partition_for_us,omitempty"`
	ChaosPartitionPct float64    `json:"chaos_partition_pct,omitempty"`
	// ChaosFlapAt lists link-flap windows: at each, ChaosFlaps machines have
	// their links bounced down/up (transport defaults: 500 ms / 500 ms × 3).
	ChaosFlapAt []sim.Time `json:"chaos_flap_at_us,omitempty"`
	ChaosFlaps  int        `json:"chaos_flaps,omitempty"`
	// ChaosSpikeAt lists delay-spike windows: at each, ChaosSpikes machines
	// get ChaosSpikeDelay of extra one-way latency for 1 s — enough to land
	// their traffic out of order relative to un-spiked links.
	ChaosSpikeAt    []sim.Time `json:"chaos_spike_at_us,omitempty"`
	ChaosSpikes     int        `json:"chaos_spikes,omitempty"`
	ChaosSpikeDelay sim.Time   `json:"chaos_spike_delay_us,omitempty"`
	// ChaosLockPartitionAt cuts the current primary master from the lock
	// service for ChaosLockPartitionFor while it still reaches every agent:
	// the lease expires, the standby promotes, and the deposed primary must
	// fence itself at its lease deadline (0 disables).
	ChaosLockPartitionAt  sim.Time `json:"chaos_lock_partition_at_us,omitempty"`
	ChaosLockPartitionFor sim.Time `json:"chaos_lock_partition_for_us,omitempty"`

	// Obs enables the observability plane (see obs.go): the primary master
	// records a ring-buffered time-series sample every scheduling round
	// (requires RoundWindow > 0), the harness flaps watched links to make
	// per-link loss queryable over time, and a live query client
	// interrogates the store over the transport mid-run. Results land in
	// the `obs` section of BENCH_scale.json.
	Obs bool `json:"obs,omitempty"`
	// ObsRetain is the ring capacity in samples (default 1024; the run is
	// expected to wrap it, proving eviction).
	ObsRetain int `json:"obs_retain,omitempty"`
	// ObsQueryEvery is the live query cadence (0 disables queries).
	ObsQueryEvery sim.Time `json:"obs_query_every_us,omitempty"`
}

// DefaultConfig is the paper-scale run: 5,000 machines across 125 racks and
// 100k schedule units (2,500 apps × 40 units) churning through
// submit/grant/return with a machine failover every 2 simulated seconds.
func DefaultConfig() Config {
	return Config{
		Racks:             125,
		MachinesPerRack:   40,
		Apps:              2500,
		UnitsPerApp:       40,
		ContainersPerUnit: 3,
		// Peak concurrent demand ≈ Apps/ArrivalWindow × units × containers
		// × HoldTime ≈ 128k containers against ~103k of cluster capacity:
		// the run crosses into the paper's saturated regime (§5.2 reports
		// >95% utilization), so demand queues in the locality tree and
		// every return drives the event-driven free-up path.
		HoldTime:         15 * sim.Second,
		ArrivalWindow:    35 * sim.Second,
		FailoverEvery:    2 * sim.Second,
		FailoverDowntime: 8 * sim.Second,
		Horizon:          10 * sim.Minute,
		Seed:             1,
	}
}

// SmokeConfig is the CI-sized run: 100 machines, 2,000 schedule units.
func SmokeConfig() Config {
	c := DefaultConfig()
	c.Racks, c.MachinesPerRack = 10, 10
	c.Apps, c.UnitsPerApp = 100, 20
	c.ArrivalWindow = 10 * sim.Second
	c.Horizon = 2 * sim.Minute
	return c
}

// WithMasterFailovers returns the configuration with n master crashes
// spread evenly across the busy part of the run (arrival window plus one
// hold cycle) and the invariant checker enabled — the paper-scale
// hot-standby promotion scenario.
func (c Config) WithMasterFailovers(n int) Config {
	c.MasterFailoverAt = nil
	span := c.ArrivalWindow + c.HoldTime
	for i := 1; i <= n; i++ {
		c.MasterFailoverAt = append(c.MasterFailoverAt, span*sim.Time(i)/sim.Time(n+1))
	}
	c.CheckInvariants = true
	return c
}

// Result is one run's measurement, serialized into BENCH_scale.json.
type Result struct {
	Config   Config `json:"config"`
	Machines int    `json:"machines"`
	Units    int    `json:"units"`

	// Decisions is the number of container-level scheduling decisions the
	// master materialized (grants + revocations observed by the apps).
	Decisions uint64 `json:"decisions"`
	Grants    uint64 `json:"grants"`
	Revokes   uint64 `json:"revokes"`

	WallSeconds     float64 `json:"wall_seconds"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`

	// Demand-to-grant latency in virtual (simulated) milliseconds: from a
	// DemandUpdate leaving an application master to the first resulting
	// grant arriving back (paper Figure 9 reports mean 0.88 ms).
	LatencyMeanMS float64 `json:"latency_mean_ms"`
	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
	LatencyMaxMS  float64 `json:"latency_max_ms"`

	AllocsPerDecision float64 `json:"allocs_per_decision"`
	EventsFired       uint64  `json:"events_fired"`
	MessagesSent      uint64  `json:"messages_sent"`
	MessageBatches    uint64  `json:"message_batches"`

	CompletedApps int `json:"completed_apps"`
	// Truncated marks a run stopped (by WallBudget or Horizon) before every
	// app completed: its latency aggregates cover only the demand answered
	// before the cut and are NOT comparable to a run-to-completion section —
	// use the compare result's common-prefix latency for that.
	Truncated  bool     `json:"truncated,omitempty"`
	SimSeconds float64  `json:"sim_seconds"`
	Invariants []string `json:"invariant_violations,omitempty"`
	// InvariantChecks counts checker invocations (0 when not attached).
	InvariantChecks int `json:"invariant_checks,omitempty"`

	// Sharded-sweep reducer outcomes (Shards > 1 only): sweeps taken
	// parallel, and the fraction of machines committed straight from
	// validated speculative proposals (the rest re-ran serially). Blocks /
	// Steals / StealRate count work-stealing block handoffs, Rebalances
	// the cost-balanced cut-point recomputations, and Imbalance the mean per-sweep
	// (slowest worker / mean worker) scoring wall-time ratio. StealRate
	// and Imbalance describe the hardware run (they vary with real
	// scheduling interleavings); the decision stream does not.
	ParallelSweeps      uint64  `json:"parallel_sweeps,omitempty"`
	ParallelCommitRatio float64 `json:"parallel_commit_ratio,omitempty"`
	ParallelBlocks      uint64  `json:"parallel_blocks,omitempty"`
	ParallelSteals      uint64  `json:"parallel_steals,omitempty"`
	ParallelStealRate   float64 `json:"parallel_steal_rate,omitempty"`
	ParallelImbalance   float64 `json:"parallel_score_imbalance,omitempty"`
	ParallelRebalances  uint64  `json:"parallel_rebalances,omitempty"`

	// DecisionStreamHash is the FNV-1a hash over the observed grant/revoke
	// stream (Config.RecordDecisionHash) — equal across shard counts iff
	// the committed decision streams are byte-identical.
	DecisionStreamHash string `json:"decision_stream_hash,omitempty"`

	// Master-failover measurements (virtual milliseconds), present when
	// MasterFailoverAt is non-empty. Recovery is crash → soft state rebuilt
	// and scheduling resumed; scheduling pause is crash → first grant from
	// the promoted successor delivered to an application master.
	MasterFailovers int     `json:"master_failovers,omitempty"`
	RecoveryMeanMS  float64 `json:"recovery_mean_ms,omitempty"`
	RecoveryP50MS   float64 `json:"recovery_p50_ms,omitempty"`
	RecoveryP99MS   float64 `json:"recovery_p99_ms,omitempty"`
	RecoveryMaxMS   float64 `json:"recovery_max_ms,omitempty"`
	SchedPauseP50MS float64 `json:"sched_pause_p50_ms,omitempty"`
	SchedPauseP99MS float64 `json:"sched_pause_p99_ms,omitempty"`
	SchedPauseMaxMS float64 `json:"sched_pause_max_ms,omitempty"`
	// GrantsLost counts containers held by application masters at recovery
	// completion that the rebuilt master ledger does not carry (0 when the
	// soft-state rebuild is exact). GrantsReissued counts containers
	// granted by the promoted masters' post-recovery assignment passes.
	GrantsLost     uint64 `json:"grants_lost_on_failover,omitempty"`
	GrantsReissued uint64 `json:"grants_reissued,omitempty"`
	// Checkpoint byte accounting (failover scenarios), the durable-storage
	// cost of the run: write count, cumulative bytes (delta log plus
	// compaction anchors), and bytes per registered job.
	CheckpointWrites      int     `json:"checkpoint_writes,omitempty"`
	CheckpointBytes       int64   `json:"checkpoint_bytes,omitempty"`
	CheckpointBytesPerJob float64 `json:"checkpoint_bytes_per_job,omitempty"`

	// Gateway holds the submission gateway's measurement snapshot — the
	// `gateway` section of BENCH_scale.json (gateway mode only).
	Gateway *gateway.Stats `json:"gateway,omitempty"`
	// Dataplane holds the application-level data-plane measurements —
	// makespan, locality hit rate, shuffle volume, per-class SLO attainment
	// (dataplane mode only; the `dataplane` section of BENCH_scale.json).
	Dataplane *DataplaneStats `json:"dataplane,omitempty"`
	// Replay holds the trace-replay measurements — per-class SLO
	// attainment, shed and preemption rates, per-phase utilization, storm
	// accounting (replay mode only; the `replay` section of
	// BENCH_scale.json).
	Replay *ReplayStats `json:"replay,omitempty"`
	// Chaos holds the adversarial-network measurements — storm accounting,
	// convergence-after-heal percentiles, lost/reissued grant counts, link
	// loss attribution (chaos mode only; the `chaos` section of
	// BENCH_scale.json).
	Chaos *ChaosStats `json:"chaos,omitempty"`
	// Obs holds the observability-plane measurements — ring shape, live
	// query conversation, loss attribution, incremental checkpoint byte
	// accounting (obs mode only; the `obs` section of BENCH_scale.json).
	Obs *ObsStats `json:"obs,omitempty"`
	// AllocsPerAdmission and MessagesPerAdmission are the whole run's
	// allocation and message volume per registered job (gateway mode only;
	// the budget gates in CI enforce them).
	AllocsPerAdmission   float64 `json:"allocs_per_admission,omitempty"`
	MessagesPerAdmission float64 `json:"messages_per_admission,omitempty"`
	// GatewayDecisions is the full decision stream (parity tests only).
	GatewayDecisions []gateway.Decision `json:"-"`
	// VsRoundsSpeedup is the churn section's decisions/s over the best
	// recorded rounds-path section (parallel-* / optimized) of the -prev
	// baseline — the "≥1.5× on this container" claim, measured, not
	// asserted. scalesim fills it when -churn runs with -prev.
	VsRoundsSpeedup float64 `json:"vs_rounds_speedup,omitempty"`
	// Prev tags single-run payloads with the previous-baseline diff (see
	// PrevDiff); scalesim fills it when -prev is given.
	Prev *PrevDiff `json:"prev_diff,omitempty"`

	// Completed lists the completed application names, for the metamorphic
	// failover-transparency test (excluded from JSON: at paper scale it
	// would dominate the benchmark file).
	Completed []string `json:"-"`
	// AppLatency aggregates demand-to-grant latency per application, for
	// the common-completed-prefix comparison across runs (excluded from
	// JSON for the same reason as Completed).
	AppLatency map[string]AppLat `json:"-"`
}

// AppLat is one application's demand-to-grant latency aggregate.
type AppLat struct {
	SumMS float64
	N     int
	MaxMS float64
}

// PrefixLatency reports demand-to-grant latency restricted to the
// applications every compared run completed — the apples-to-apples view
// when a wall-budgeted baseline was truncated mid-workload (a truncated
// run's whole-run latency_mean covers only the easy early demand and is
// meaningless next to a run-to-completion section).
type PrefixLatency struct {
	Apps   int                `json:"apps"`
	MeanMS map[string]float64 `json:"latency_mean_ms"`
	MaxMS  map[string]float64 `json:"latency_max_ms"`
	// RoundWindowMS records each section's scheduling-round width
	// (master.Config.BatchWindow). Sections with a positive window buffer
	// demand and returns for up to one window before scheduling, so their
	// prefix latency carries that configured batching delay on top of pure
	// scheduling time — e.g. the parallel sections' ~13 ms means next to
	// the serial sections' sub-millisecond ones are the 20 ms round window,
	// not a scheduling regression. The compare output attributes this
	// explicitly so the gap cannot read as one.
	RoundWindowMS map[string]float64 `json:"round_window_ms,omitempty"`
}

// Budgets are the perf regression gates scalesim enforces (and records in
// BENCH_scale.json): a run whose allocation pressure per decision or
// message volume per grant exceeds its budget exits non-zero in CI. The
// per-admission budgets apply to gateway-mode runs only.
type Budgets struct {
	MaxAllocsPerDecision    float64 `json:"max_allocs_per_decision"`
	MaxMessagesPerGrant     float64 `json:"max_messages_per_grant"`
	MaxAllocsPerAdmission   float64 `json:"max_allocs_per_admission,omitempty"`
	MaxMessagesPerAdmission float64 `json:"max_messages_per_admission,omitempty"`
	// MaxAllocsPerDecisionChurn gates the steady-state churn section, which
	// excludes arrival/teardown costs and therefore holds a much tighter
	// line than the whole-run per-decision budget.
	MaxAllocsPerDecisionChurn float64 `json:"max_allocs_per_decision_churn,omitempty"`
	// MaxAllocsPerDecisionFailover gates the master-failover scenario,
	// whose decisions carry the recovery waves (full soft-state rebuilds,
	// re-registration storms) on top of normal scheduling.
	MaxAllocsPerDecisionFailover float64 `json:"max_allocs_per_decision_failover,omitempty"`
	// Dataplane gates (dataplane mode only): minimum locality hit rate over
	// locality-tracked grants, maximum batch-job makespan p99, and minimum
	// service-class demand-to-grant SLO attainment.
	MinDataplaneLocalityPct   float64 `json:"min_dataplane_locality_pct,omitempty"`
	MaxDataplaneMakespanP99MS float64 `json:"max_dataplane_makespan_p99_ms,omitempty"`
	MinDataplaneServiceSLOPct float64 `json:"min_dataplane_service_slo_pct,omitempty"`
	// Replay gates (replay mode only): minimum service-class demand-to-
	// grant SLO attainment through the diurnal cycles and failure storms,
	// maximum service-class admission p99, and maximum overall shed rate.
	MinReplayServiceSLOPct         float64 `json:"min_replay_service_slo_pct,omitempty"`
	MaxReplayServiceAdmissionP99MS float64 `json:"max_replay_service_admission_p99_ms,omitempty"`
	MaxReplayShedPct               float64 `json:"max_replay_shed_pct,omitempty"`
	// Chaos gates (chaos mode only): maximum convergence-after-heal p99 and
	// maximum grants reissued during heal windows. Any unconverged heal
	// window fails the check unconditionally — that is a correctness signal,
	// not a calibrated budget.
	MaxChaosConvergenceP99MS float64 `json:"max_chaos_convergence_p99_ms,omitempty"`
	MaxChaosReissued         uint64  `json:"max_chaos_reissued,omitempty"`
	// Obs gates (obs mode only): maximum allocations per time-series sample
	// (the record path must stay alloc-free in steady state; the calibrated
	// value is gated at a fraction of one) and maximum checkpoint bytes per
	// registered job (the incremental-checkpoint regression line: a
	// snapshot-per-write regression multiplies it by the job count).
	MaxObsAllocsPerSample    float64 `json:"max_obs_allocs_per_sample,omitempty"`
	MaxCheckpointBytesPerJob float64 `json:"max_checkpoint_bytes_per_job,omitempty"`
	// MinSMPCoreSpeedupP4 gates the SMP lane's core-kernel wall-clock
	// speedup at shards=4 — enforced only on hosts with >= 4 cores and
	// GOMAXPROCS >= 4 (single-core runs are tagged and skipped).
	MinSMPCoreSpeedupP4 float64 `json:"min_smp_core_speedup_p4,omitempty"`
}

// CheckBudgets returns the budget violations of this run (nil when within
// budget; zero-valued budgets are not enforced). Gateway runs are gated on
// the per-admission budgets only: the front-door workload — tens of
// thousands of tiny jobs plus admission-control traffic — has a different
// per-decision profile than the saturated batch churn the per-decision and
// per-grant budgets were calibrated on.
func (r *Result) CheckBudgets(b Budgets) []string {
	var bad []string
	if r.Obs != nil {
		// Obs gates come first and do not dispatch away: an obs run is the
		// churn workload underneath, so it faces the churn budgets too.
		o := r.Obs
		if b.MaxObsAllocsPerSample > 0 && o.AllocsPerSample > b.MaxObsAllocsPerSample {
			bad = append(bad, fmt.Sprintf("obs allocs/sample %.3f exceeds budget %.3f",
				o.AllocsPerSample, b.MaxObsAllocsPerSample))
		}
		if b.MaxCheckpointBytesPerJob > 0 && o.CheckpointBytesPerJob > b.MaxCheckpointBytesPerJob {
			bad = append(bad, fmt.Sprintf("checkpoint bytes/job %.0f exceeds budget %.0f",
				o.CheckpointBytesPerJob, b.MaxCheckpointBytesPerJob))
		}
	}
	if r.Chaos != nil {
		// Chaos runs are gated on recovery behaviour: any heal window that
		// never reconverged is a hard failure, and the convergence-time and
		// repair-traffic budgets hold the recovery path's regression line.
		cz := r.Chaos
		if cz.Unconverged > 0 {
			bad = append(bad, fmt.Sprintf("%d heal window(s) never reconverged within the probe timeout",
				cz.Unconverged))
		}
		if b.MaxChaosConvergenceP99MS > 0 && cz.ConvergenceP99MS > b.MaxChaosConvergenceP99MS {
			bad = append(bad, fmt.Sprintf("chaos convergence p99 %.0f ms exceeds budget %.0f ms",
				cz.ConvergenceP99MS, b.MaxChaosConvergenceP99MS))
		}
		if b.MaxChaosReissued > 0 && cz.ReissuedGrants > b.MaxChaosReissued {
			bad = append(bad, fmt.Sprintf("chaos reissued grants %d exceed budget %d",
				cz.ReissuedGrants, b.MaxChaosReissued))
		}
		return bad
	}
	if r.Replay != nil {
		// Replay runs are gated on workload-level SLO attainment: the
		// diurnal open-loop shape makes alloc-per-decision incomparable to
		// the synthetic sections.
		rp := r.Replay
		if b.MinReplayServiceSLOPct > 0 && rp.Service.SLOAttainedPct < b.MinReplayServiceSLOPct {
			bad = append(bad, fmt.Sprintf("replay service SLO attainment %.1f%% below budget %.1f%%",
				rp.Service.SLOAttainedPct, b.MinReplayServiceSLOPct))
		}
		if b.MaxReplayServiceAdmissionP99MS > 0 && rp.Service.AdmissionP99MS > b.MaxReplayServiceAdmissionP99MS {
			bad = append(bad, fmt.Sprintf("replay service admission p99 %.0f ms exceeds budget %.0f ms",
				rp.Service.AdmissionP99MS, b.MaxReplayServiceAdmissionP99MS))
		}
		if b.MaxReplayShedPct > 0 && rp.ShedPct > b.MaxReplayShedPct {
			bad = append(bad, fmt.Sprintf("replay shed rate %.1f%% exceeds budget %.1f%%",
				rp.ShedPct, b.MaxReplayShedPct))
		}
		return bad
	}
	if r.Dataplane != nil {
		// Dataplane runs are gated on the application-level metrics: the few
		// heavy jobs behind the gateway make the per-admission (and
		// per-decision) allocation profiles incomparable to the synthetic
		// sections those budgets were calibrated on.
		d := r.Dataplane
		if b.MinDataplaneLocalityPct > 0 && d.LocalityHitRatePct < b.MinDataplaneLocalityPct {
			bad = append(bad, fmt.Sprintf("dataplane locality %.1f%% below budget %.1f%%",
				d.LocalityHitRatePct, b.MinDataplaneLocalityPct))
		}
		if b.MaxDataplaneMakespanP99MS > 0 && d.MakespanP99MS > b.MaxDataplaneMakespanP99MS {
			bad = append(bad, fmt.Sprintf("dataplane makespan p99 %.0f ms exceeds budget %.0f ms",
				d.MakespanP99MS, b.MaxDataplaneMakespanP99MS))
		}
		if b.MinDataplaneServiceSLOPct > 0 && d.Service.SLOAttainedPct < b.MinDataplaneServiceSLOPct {
			bad = append(bad, fmt.Sprintf("dataplane service SLO attainment %.1f%% below budget %.1f%%",
				d.Service.SLOAttainedPct, b.MinDataplaneServiceSLOPct))
		}
		return bad
	}
	if r.Gateway != nil {
		if b.MaxAllocsPerAdmission > 0 && r.AllocsPerAdmission > b.MaxAllocsPerAdmission {
			bad = append(bad, fmt.Sprintf("allocs/admission %.1f exceeds budget %.1f",
				r.AllocsPerAdmission, b.MaxAllocsPerAdmission))
		}
		if b.MaxMessagesPerAdmission > 0 && r.MessagesPerAdmission > b.MaxMessagesPerAdmission {
			bad = append(bad, fmt.Sprintf("messages/admission %.1f exceeds budget %.1f",
				r.MessagesPerAdmission, b.MaxMessagesPerAdmission))
		}
		return bad
	}
	switch {
	case r.Config.Churn:
		if b.MaxAllocsPerDecisionChurn > 0 && r.AllocsPerDecision > b.MaxAllocsPerDecisionChurn {
			bad = append(bad, fmt.Sprintf("churn allocs/decision %.1f exceeds budget %.1f",
				r.AllocsPerDecision, b.MaxAllocsPerDecisionChurn))
		}
	case len(r.Config.MasterFailoverAt) > 0:
		if b.MaxAllocsPerDecisionFailover > 0 && r.AllocsPerDecision > b.MaxAllocsPerDecisionFailover {
			bad = append(bad, fmt.Sprintf("failover allocs/decision %.1f exceeds budget %.1f",
				r.AllocsPerDecision, b.MaxAllocsPerDecisionFailover))
		}
	default:
		if b.MaxAllocsPerDecision > 0 && r.AllocsPerDecision > b.MaxAllocsPerDecision {
			bad = append(bad, fmt.Sprintf("allocs/decision %.1f exceeds budget %.1f",
				r.AllocsPerDecision, b.MaxAllocsPerDecision))
		}
	}
	if b.MaxMessagesPerGrant > 0 && r.Grants > 0 {
		if mpg := float64(r.MessagesSent) / float64(r.Grants); mpg > b.MaxMessagesPerGrant {
			bad = append(bad, fmt.Sprintf("messages/grant %.2f exceeds budget %.2f",
				mpg, b.MaxMessagesPerGrant))
		}
	}
	return bad
}

// PrevDiff tags a run with how it relates to a previous BENCH_scale.json:
// which sections were compared and which this build produced but the old
// baseline predates (e.g. a pre-gateway file has no `gateway` section —
// that is a skip, not an error).
type PrevDiff struct {
	Path            string   `json:"path"`
	Compared        []string `json:"compared,omitempty"`
	SkippedSections []string `json:"skipped_sections,omitempty"`
}

// CompareResult pairs an optimized run with its same-build baseline, the
// sharded parallel runs, and (when requested) the master-failover scenario
// on the same workload.
type CompareResult struct {
	Baseline  Result  `json:"baseline"`
	Optimized Result  `json:"optimized"`
	Speedup   float64 `json:"speedup"`
	// Parallel holds one run per requested shard count (rounds enabled),
	// and SpeedupParallel is the best parallel throughput over the serial
	// optimized section's.
	Parallel        []Result `json:"parallel,omitempty"`
	SpeedupParallel float64  `json:"speedup_parallel,omitempty"`
	// CommonPrefixLatency compares latency over the apps every section
	// completed (see PrefixLatency).
	CommonPrefixLatency *PrefixLatency `json:"common_prefix_latency,omitempty"`
	Budgets             *Budgets       `json:"budgets,omitempty"`
	Failover            *Result        `json:"failover,omitempty"`
	// GatewayRun holds the gateway-mode scenario on the same cluster
	// footprint (scalesim -compare -gateway).
	GatewayRun *Result   `json:"gateway,omitempty"`
	Prev       *PrevDiff `json:"prev_diff,omitempty"`
}

// scaleApp drives one application master's churn: request, hold, return,
// re-request on revocation, unregister when every container completed one
// hold cycle.
type scaleApp struct {
	h         *harness
	am        *appmaster.AM
	name      string
	remaining int
	done      bool
	// hold and class are replay-mode per-job shape: how long granted
	// containers are held (drawn from the heavy-tailed hold distribution)
	// and the gateway service class the job was admitted under.
	hold  sim.Time
	class gateway.Class
	// pendingReq records, per unit (dense, 0 = none pending), when the
	// oldest unanswered demand was sent, for the demand-to-grant latency
	// histogram.
	pendingReq []sim.Time
	// reqCount accumulates one instant's churn re-demand per unit, so the
	// expiries of several machines' containers merge into one DemandUpdate.
	reqCount []int
}

type harness struct {
	cfg    Config
	eng    *sim.Engine
	net    *transport.Net
	top    *topology.Topology
	agents []*agent.Agent
	// gw is the submission front door (gateway mode only); gwSubmitted
	// counts load-generator submissions issued so far; gwUnitTmpl caches
	// shared single-unit definition slices (see gwUnits).
	gw          *gateway.Gateway
	gwSubmitted int
	gwUnitTmpl  map[int][]resource.ScheduleUnit
	// dp is the data-plane workload state (dataplane mode only).
	dp *dpState
	// rp is the trace-replay workload state (replay mode only); mcfg is the
	// primary master's configuration, kept so replay fault campaigns can
	// crash the primary through the same path as scheduled failovers.
	rp   *rpState
	mcfg master.Config
	// cz is the chaos-mode state (chaos mode only); lockReach is the
	// per-master lock-service reachability the chaos lock partition toggles
	// (index matches h.masters).
	cz        *czState
	lockReach [2]bool
	// ob is the observability-mode state (obs mode only); ckpt is the
	// shared durable checkpoint store, kept for byte accounting.
	ob   *obsState
	ckpt *master.CheckpointStore
	// machineCrashes counts injected machine failovers, bounding the
	// blacklist slice of the checkpoint write budget.
	machineCrashes int
	// masters is the hot-standby pair (second entry nil without master
	// failover); whichever holds the lease is primary.
	masters []*master.Master
	apps    []*scaleApp
	reg     *metrics.Registry
	rng     *rand.Rand

	latency   *metrics.Histogram
	appLat    map[string]AppLat
	grants    uint64
	revokes   uint64
	completed int
	names     []string

	// decHash is the running FNV-1a over the observed decision stream
	// (Config.RecordDecisionHash); 0 means disabled.
	decHash uint64

	// Churn-mode hold-expiry pool (see churn.go): holdFn is bound once and
	// every grant borrows a pooled record for its closure-free hold timer;
	// reqPend defers one instant's re-demands past its returns.
	holdFn   func(any)
	holdFree []*holdRec
	reqPend  []*holdRec
	reqArmed bool

	// Master-failover bookkeeping. crashAt is the last crash instant;
	// pauseAt arms the scheduling-pause measurement (cleared by the first
	// grant arriving more than 1ms after the crash, which excludes the
	// dead master's in-flight deliveries).
	recovery   *metrics.Histogram
	schedPause *metrics.Histogram
	crashAt    sim.Time
	pauseAt    sim.Time
	crashes    int
	lost       uint64
	reissued   uint64
	checker    *invariant.Checker
}

// primary returns the current primary master (nil during an interregnum).
func (h *harness) primary() *master.Master {
	for _, m := range h.masters {
		if m != nil && m.IsPrimary() {
			return m
		}
	}
	return nil
}

func (h *harness) primarySched() *master.Scheduler {
	if p := h.primary(); p != nil {
		return p.Scheduler()
	}
	return nil
}

// crashPrimary kills the active master; the standby takes over when the
// lease expires, and the crashed process restarts as the new standby once
// the successor's recovery window has passed. A crash time landing in an
// interregnum (the previous failover's successor not yet promoted) retries
// shortly after, so the configured crash count is always executed.
func (h *harness) crashPrimary(mcfg master.Config) {
	p := h.primary()
	if p == nil {
		h.eng.After(500*sim.Millisecond, func() { h.crashPrimary(mcfg) })
		return
	}
	h.crashes++
	h.crashAt = h.eng.Now()
	h.pauseAt = h.crashAt
	p.Crash()
	restartAfter := mcfg.LockTTL + mcfg.RecoveryWindow + sim.Second
	h.eng.After(restartAfter, p.Restart)
}

// onRecovered measures one completed failover: recovery latency, grants the
// rebuilt ledger lost versus the application masters' views, and grants
// reissued by the post-recovery assignment pass.
func (h *harness) onRecovered(epoch, reissuedGrants int) {
	if h.crashAt != 0 {
		h.recovery.Observe(float64(h.eng.Now()-h.crashAt) / float64(sim.Millisecond))
	}
	h.reissued += uint64(reissuedGrants)
	s := h.primarySched()
	if s == nil {
		return
	}
	for _, a := range h.apps {
		if a.done {
			continue
		}
		held := a.am.HeldSnapshot()
		for unitID, machines := range held {
			granted := s.Granted(a.name, unitID)
			for m, n := range machines {
				if d := n - granted[m]; d > 0 {
					h.lost += uint64(d)
				}
			}
		}
	}
	if h.dp != nil {
		for _, j := range h.dp.jobs {
			if j.am == nil || j.done {
				continue
			}
			held := j.am.HeldSnapshot()
			for unitID, machines := range held {
				granted := s.Granted(j.id, unitID)
				for m, n := range machines {
					if d := n - granted[m]; d > 0 {
						h.lost += uint64(d)
					}
				}
			}
		}
	}
}

// Run executes one stress run and returns its measurements.
func Run(cfg Config) (*Result, error) {
	gwMode := cfg.GatewayUsers > 0 || cfg.Dataplane || cfg.Replay
	if cfg.Racks <= 0 || cfg.MachinesPerRack <= 0 || cfg.UnitsPerApp <= 0 {
		return nil, fmt.Errorf("scale: non-positive cluster or workload dimension")
	}
	if cfg.Chaos && gwMode {
		return nil, fmt.Errorf("scale: chaos mode runs the classic or churn workload, not a gateway mode")
	}
	if cfg.Obs && cfg.RoundWindow <= 0 {
		return nil, fmt.Errorf("scale: obs mode samples per scheduling round and needs RoundWindow > 0")
	}
	if cfg.Replay {
		if cfg.Dataplane {
			return nil, fmt.Errorf("scale: replay and dataplane modes are mutually exclusive")
		}
		if cfg.ReplayDays <= 0 || cfg.ReplayDayLength <= 0 || cfg.ReplaySessionsPerSec <= 0 {
			return nil, fmt.Errorf("scale: replay mode needs positive days, day length, and session rate")
		}
		if cfg.GatewayUsers <= 0 {
			return nil, fmt.Errorf("scale: replay mode needs a tenant population")
		}
	}
	if cfg.Dataplane {
		// Data-plane jobs ride the gateway admission path; the submission
		// count workloadDone waits for is the job count.
		total := cfg.GraySortJobs + cfg.DAGJobs + cfg.ServiceJobs
		if total <= 0 {
			return nil, fmt.Errorf("scale: dataplane mode needs at least one job")
		}
		if cfg.ServiceJobs > 0 && (cfg.ServiceOps < 0 || cfg.ServiceOpEvery <= 0) {
			return nil, fmt.Errorf("scale: dataplane service jobs need a positive op period")
		}
		cfg.GatewaySubmissions = total
	}
	if gwMode && !cfg.Replay && cfg.GatewaySubmissions <= 0 {
		// Replay is open-loop: the submission count follows from the arrival
		// process rather than a preset target.
		return nil, fmt.Errorf("scale: gateway mode needs a positive submission count")
	}
	if !gwMode && cfg.Apps <= 0 {
		return nil, fmt.Errorf("scale: non-positive cluster or workload dimension")
	}
	top, err := topology.Build(topology.Spec{
		Racks: cfg.Racks, MachinesPerRack: cfg.MachinesPerRack,
		MachineCapacity: topology.PaperTestbedMachine(),
	})
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cfg.Seed)
	// Fixed latency, no jitter: same-instant messages then deliver in send
	// order, which the incremental protocol's happy path assumes (an app's
	// RegisterApp must precede its first DemandUpdate; reordering is legal
	// but falls back to the slow full-sync repair path).
	net := transport.NewNet(eng)
	lock := lockservice.New(eng)
	ckpt := master.NewCheckpointStore()
	reg := metrics.NewRegistry()

	mcfg := master.DefaultConfig("fm-scale-1")
	mcfg.Sched.LegacyScan = cfg.LegacyScan
	mcfg.Sched.Shards = cfg.Shards
	mcfg.Sched.ForceSteal = cfg.ForceSteal
	mcfg.BatchWindow = cfg.RoundWindow
	if gwMode {
		// Gateway priority classes map onto scheduler quota groups (zero
		// minimum: usage accounting, no guarantee).
		mcfg.Sched.Groups = map[string]resource.Vector{}
		for cl := gateway.Class(0); cl < gateway.NumClasses; cl++ {
			mcfg.Sched.Groups[cl.QuotaGroup()] = resource.Vector{}
		}
	}
	h := &harness{
		cfg: cfg, eng: eng, net: net, top: top, reg: reg,
		rng:        rand.New(rand.NewSource(cfg.Seed + 1)),
		latency:    reg.Histogram("scale.demand_to_grant_ms"),
		recovery:   reg.Histogram("scale.master_recovery_ms"),
		schedPause: reg.Histogram("scale.sched_pause_ms"),
		appLat:     make(map[string]AppLat, cfg.Apps),
	}
	h.holdFn = h.holdExpire
	h.ckpt = ckpt
	if cfg.RecordDecisionHash {
		h.decHash = fnvOffset
	}
	if cfg.Obs {
		h.ob = newObsState(h)
		mcfg.Obs = h.ob.store
		mcfg.ObsSampler = h.ob.sample
		// Track what full-snapshot-per-write would have cost, so the obs
		// section reports the delta log's measured saving.
		ckpt.TrackFullCost = true
	}
	h.mcfg = mcfg
	if cfg.Dataplane {
		h.dp = newDPState(h)
	}
	if cfg.Replay {
		h.rp = newRPState(h, top.Size())
	}
	if cfg.Chaos {
		h.cz = newCZState(h, top.Size())
		// Route both masters' lease reachability through the harness so the
		// chaos lock partition can cut the primary from the lock service
		// while its data-plane links stay up.
		h.lockReach = [2]bool{true, true}
		mcfg.LockReachable = func() bool { return h.lockReach[0] }
	}
	if len(cfg.MasterFailoverAt) > 0 {
		mcfg.OnRecovered = h.onRecovered
	}
	if gwMode {
		// The gateway boots before the masters so the epoch-1 promotion
		// already finds its endpoint registered.
		lim := gateway.DefaultLimits()
		if cfg.GatewayLimits != nil {
			lim = *cfg.GatewayLimits
		}
		if cfg.Replay && lim.SessionGap == 0 && cfg.ReplayBurstGap > 0 {
			// Track burst sessions at the gateway: a gap of several mean
			// intra-burst spacings separates sessions.
			lim.SessionGap = 5 * cfg.ReplayBurstGap
		}
		onReg := h.spawnGatewayJob
		if cfg.Dataplane {
			onReg = h.spawnDataplaneJob
		} else if cfg.Replay {
			onReg = h.spawnReplayJob
		}
		h.gw = gateway.New(gateway.Config{
			Limits:          lim,
			OnRegistered:    onReg,
			RecordDecisions: cfg.RecordGatewayDecisions,
		}, eng, net)
	}
	h.masters = append(h.masters, master.NewMaster(mcfg, eng, net, lock, top, ckpt, reg))
	needStandby := len(cfg.MasterFailoverAt) > 0 ||
		(cfg.Chaos && cfg.ChaosLockPartitionAt > 0 && cfg.ChaosLockPartitionFor > 0)
	if needStandby {
		m2 := mcfg
		m2.ProcessName = "fm-scale-2"
		if cfg.Chaos {
			m2.LockReachable = func() bool { return h.lockReach[1] }
		}
		h.masters = append(h.masters, master.NewMaster(m2, eng, net, lock, top, ckpt, reg))
	}
	if len(cfg.MasterFailoverAt) > 0 {
		for _, at := range cfg.MasterFailoverAt {
			eng.At(at, func() { h.crashPrimary(mcfg) })
		}
	}
	eng.Run(10 * sim.Millisecond) // let the election settle

	acfg := agent.DefaultConfig()
	for _, m := range top.Machines() {
		h.agents = append(h.agents, agent.New(acfg, eng, net, top.Machine(m)))
	}

	if cfg.CheckInvariants {
		h.checker = &invariant.Checker{
			Top:   top,
			Sched: h.primarySched,
			Agents: func() []*agent.Agent {
				return h.agents
			},
			AMs: func() []*appmaster.AM {
				ams := make([]*appmaster.AM, 0, len(h.apps))
				for _, a := range h.apps {
					if !a.done {
						ams = append(ams, a.am)
					}
				}
				if h.dp != nil {
					for _, j := range h.dp.jobs {
						if j.am != nil && !j.done {
							ams = append(ams, j.am)
						}
					}
				}
				return ams
			},
			Ckpt:    ckpt,
			Gateway: h.gw,
		}
		// Conservation invariants after every virtual second of scheduling
		// rounds (plus admission conservation in gateway mode); ledger
		// agreement is checked at the settled end of the run.
		eng.Every(sim.Second, func() {
			h.checker.CheckScheduler()
			if h.gw != nil {
				h.checker.CheckAdmission(false)
			}
		})
	}

	if cfg.Dataplane {
		if err := h.scheduleDataplane(); err != nil {
			return nil, err
		}
	} else if cfg.Replay {
		h.scheduleReplay()
	} else if gwMode {
		h.scheduleSubmissions()
	} else {
		// Schedule app arrivals uniformly across the window.
		for i := 0; i < cfg.Apps; i++ {
			at := eng.Now() + sim.Time(int64(cfg.ArrivalWindow)*int64(i)/int64(cfg.Apps))
			idx := i
			eng.At(at, func() { h.spawnApp(idx) })
		}
	}
	if cfg.Chaos {
		h.scheduleChaos()
	}
	if h.ob != nil {
		h.ob.schedule()
	}

	// Failover churn: crash a random up machine, restart after the
	// downtime (long enough for the heartbeat timeout to declare it dead
	// and revoke its grants).
	if cfg.FailoverEvery > 0 {
		eng.Every(cfg.FailoverEvery, func() {
			a := h.agents[h.rng.Intn(len(h.agents))]
			if !a.Up() {
				return
			}
			h.machineCrashes++
			a.CrashMachine()
			eng.After(cfg.FailoverDowntime, a.RestartMachine)
		})
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	slice := 500 * sim.Millisecond
	evBase, msgBase, batchBase := uint64(0), uint64(0), uint64(0)
	if cfg.Churn {
		// Warmup: arrivals plus enough hold cycles to reach steady state.
		// Everything measured — decisions, allocations, messages, events,
		// latency — restarts at the warmup boundary, so the section reports
		// pure steady-state cost.
		for eng.Now() < cfg.ChurnWarmup {
			eng.Run(eng.Now() + slice)
			if cfg.WallBudget > 0 && time.Since(start) > cfg.WallBudget {
				break
			}
		}
		h.grants, h.revokes = 0, 0
		h.latency.Reset()
		evBase = eng.Fired()
		s := net.Stats()
		msgBase, batchBase = s.Sent, s.Batches
		runtime.ReadMemStats(&before)
		start = time.Now()
	}
	for eng.Now() < cfg.Horizon && !h.workloadDone() {
		eng.Run(eng.Now() + slice)
		if cfg.WallBudget > 0 && time.Since(start) > cfg.WallBudget {
			break
		}
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	if h.checker != nil && h.workloadDone() {
		// Let in-flight control traffic land (one-way latency is 200µs;
		// two virtual seconds covers every outstanding round trip), then
		// verify the settled cross-component ledgers and the checkpoint
		// write budget: one SaveApp per registered app, one RemoveApp per
		// completed app, one epoch bump per election, plus a blacklist
		// allowance derived from the deaths the run injected — each
		// machine crash can be observed once per master tenure and score at
		// most one blacklisting plus one rehabilitation write. A regression
		// that writes the blacklist on the fast path still blows the budget.
		eng.Run(eng.Now() + 2*sim.Second)
		h.checker.CheckAll(true)
		saved := cfg.Apps
		if gwMode {
			saved = int(h.gw.Snapshot().Registered)
		}
		blkBudget := 2 * h.machineCrashes * (1 + len(cfg.MasterFailoverAt))
		writeBudget := saved + h.completed + 1 + len(cfg.MasterFailoverAt) + blkBudget
		h.checker.CheckCheckpointWrites(writeBudget)
		// Byte budget: each delta record is bounded by one app config (a
		// small header plus UnitsPerApp unit records), and compaction adds
		// one full anchor — at most saved+2 app records — every CompactEvery
		// writes. A snapshot-per-write regression re-appears as O(apps) bytes
		// per record and blows this line immediately.
		perRec := int64(128 + 96*cfg.UnitsPerApp)
		anchors := int64(writeBudget/h.ckpt.CompactionCadence() + 1)
		anchorCap := int64(saved+2) * perRec
		h.checker.CheckCheckpointBytes(int64(writeBudget)*perRec + anchors*anchorCap)
	}

	res := &Result{
		Config:         cfg,
		Machines:       top.Size(),
		Units:          cfg.Apps * cfg.UnitsPerApp,
		Grants:         h.grants,
		Revokes:        h.revokes,
		Decisions:      h.grants + h.revokes,
		WallSeconds:    wall,
		LatencyMeanMS:  h.latency.Mean(),
		LatencyP50MS:   h.latency.Quantile(0.5),
		LatencyP99MS:   h.latency.Quantile(0.99),
		LatencyMaxMS:   h.latency.Max(),
		EventsFired:    eng.Fired() - evBase,
		MessagesSent:   net.Stats().Sent - msgBase,
		MessageBatches: net.Stats().Batches - batchBase,
		CompletedApps:  h.completed,
		SimSeconds:     eng.Now().Seconds(),
	}
	if res.Decisions > 0 {
		res.DecisionsPerSec = float64(res.Decisions) / wall
		res.AllocsPerDecision = float64(after.Mallocs-before.Mallocs) / float64(res.Decisions)
	}
	res.Completed = h.names
	res.AppLatency = h.appLat
	res.Truncated = !h.workloadDone() && !cfg.Churn
	if gwMode {
		res.Units = h.completed * cfg.UnitsPerApp
		res.Gateway = h.gw.Snapshot()
		res.GatewayDecisions = h.gw.Decisions()
		if res.Gateway.Registered > 0 {
			res.AllocsPerAdmission = float64(after.Mallocs-before.Mallocs) / float64(res.Gateway.Registered)
			res.MessagesPerAdmission = float64(res.MessagesSent) / float64(res.Gateway.Registered)
		}
	}
	if h.dp != nil {
		res.Units = h.dp.units
		res.Dataplane = h.dp.snapshot(h)
	}
	if h.rp != nil {
		res.Replay = h.rp.snapshot(h)
	}
	if h.cz != nil {
		res.Chaos = h.cz.snapshot(h)
	}
	if h.ob != nil {
		res.Obs = h.ob.snapshot(h)
	}
	if s := h.primarySched(); s != nil {
		if ps := s.ParallelStats(); ps.Sweeps > 0 {
			res.ParallelSweeps = ps.Sweeps
			res.ParallelCommitRatio = ps.CommitRatio()
			res.ParallelBlocks = ps.Blocks
			res.ParallelSteals = ps.Steals
			res.ParallelStealRate = ps.StealRate()
			res.ParallelImbalance = ps.Imbalance()
			res.ParallelRebalances = ps.Rebalances
		}
	}
	if h.decHash != 0 {
		res.DecisionStreamHash = fmt.Sprintf("%016x", h.decHash)
	}
	if h.checker != nil {
		res.Invariants = h.checker.Violations
		res.InvariantChecks = h.checker.Checks
	} else if s := h.primarySched(); s != nil {
		res.Invariants = s.CheckInvariants()
	}
	if len(cfg.MasterFailoverAt) > 0 {
		res.MasterFailovers = h.crashes
		res.RecoveryMeanMS = h.recovery.Mean()
		res.RecoveryP50MS = h.recovery.Quantile(0.5)
		res.RecoveryP99MS = h.recovery.Quantile(0.99)
		res.RecoveryMaxMS = h.recovery.Max()
		res.SchedPauseP50MS = h.schedPause.Quantile(0.5)
		res.SchedPauseP99MS = h.schedPause.Quantile(0.99)
		res.SchedPauseMaxMS = h.schedPause.Max()
		res.GrantsLost = h.lost
		res.GrantsReissued = h.reissued
		res.CheckpointWrites = h.ckpt.Writes
		res.CheckpointBytes = h.ckpt.Bytes()
		if saved := cfg.Apps; saved > 0 {
			res.CheckpointBytesPerJob = float64(h.ckpt.Bytes()) / float64(saved)
		}
	}
	return res, nil
}

// DefaultRoundWindow is the scheduling-round width the parallel sections
// use when the configuration does not set one.
const DefaultRoundWindow = 20 * sim.Millisecond

// RunCompare measures the serial optimized scheduler, the legacy baseline
// (rate-limited by baselineBudget wall time), and — for each requested
// shard count — the sharded parallel scheduler with batched rounds, all on
// the same seeded workload. Latency over the common completed app prefix is
// reported so the (typically truncated) baseline stays comparable.
func RunCompare(cfg Config, baselineBudget time.Duration, shardCounts []int) (*CompareResult, error) {
	opt := cfg
	opt.LegacyScan = false
	opt.Shards = 0
	opt.RoundWindow = 0
	optRes, err := Run(opt)
	if err != nil {
		return nil, err
	}
	base := cfg
	base.LegacyScan = true
	base.Shards = 0
	base.RoundWindow = 0
	base.WallBudget = baselineBudget
	baseRes, err := Run(base)
	if err != nil {
		return nil, err
	}
	out := &CompareResult{Baseline: *baseRes, Optimized: *optRes}
	if baseRes.DecisionsPerSec > 0 {
		out.Speedup = optRes.DecisionsPerSec / baseRes.DecisionsPerSec
	}
	sections := map[string]*Result{"baseline": baseRes, "optimized": optRes}
	for _, p := range shardCounts {
		par := cfg
		par.LegacyScan = false
		par.Shards = p
		if par.RoundWindow == 0 {
			par.RoundWindow = DefaultRoundWindow
		}
		parRes, err := Run(par)
		if err != nil {
			return nil, err
		}
		out.Parallel = append(out.Parallel, *parRes)
		sections[fmt.Sprintf("parallel-%d", p)] = parRes
		if optRes.DecisionsPerSec > 0 {
			if sp := parRes.DecisionsPerSec / optRes.DecisionsPerSec; sp > out.SpeedupParallel {
				out.SpeedupParallel = sp
			}
		}
	}
	out.CommonPrefixLatency = commonPrefixLatency(sections)
	return out, nil
}

// commonPrefixLatency restricts every section's demand-to-grant latency to
// the applications all sections completed.
func commonPrefixLatency(sections map[string]*Result) *PrefixLatency {
	var common map[string]bool
	for _, r := range sections {
		set := make(map[string]bool, len(r.Completed))
		for _, app := range r.Completed {
			if common == nil || common[app] {
				set[app] = true
			}
		}
		common = set
	}
	if len(common) == 0 {
		return nil
	}
	pl := &PrefixLatency{
		Apps:          len(common),
		MeanMS:        make(map[string]float64, len(sections)),
		MaxMS:         make(map[string]float64, len(sections)),
		RoundWindowMS: make(map[string]float64, len(sections)),
	}
	for name, r := range sections {
		pl.RoundWindowMS[name] = float64(r.Config.RoundWindow) / float64(sim.Millisecond)
		var sum float64
		var n int
		var max float64
		for app := range common {
			al := r.AppLatency[app]
			sum += al.SumMS
			n += al.N
			if al.MaxMS > max {
				max = al.MaxMS
			}
		}
		if n > 0 {
			pl.MeanMS[name] = sum / float64(n)
		}
		pl.MaxMS[name] = max
	}
	return pl
}

// unitSize varies container shapes across units so the multi-dimensional
// matcher sees heterogeneous requests.
func unitSize(i int) resource.Vector {
	switch i % 3 {
	case 0:
		return resource.New(500, 2048)
	case 1:
		return resource.New(1000, 4096)
	default:
		return resource.New(250, 1024)
	}
}

func (h *harness) spawnApp(idx int) {
	cfg := h.cfg
	name := fmt.Sprintf("scale-app-%04d", idx)
	units := make([]resource.ScheduleUnit, 0, cfg.UnitsPerApp)
	for u := 0; u < cfg.UnitsPerApp; u++ {
		units = append(units, resource.ScheduleUnit{
			ID:       u + 1,
			Priority: 1 + (idx+u)%4,
			Size:     unitSize(idx + u),
			MaxCount: cfg.ContainersPerUnit,
		})
	}
	app := &scaleApp{
		h:          h,
		name:       name,
		remaining:  cfg.UnitsPerApp * cfg.ContainersPerUnit,
		pendingReq: make([]sim.Time, cfg.UnitsPerApp+1),
	}
	h.apps = append(h.apps, app)
	fullSync := cfg.FullSyncEvery
	if fullSync == 0 {
		fullSync = 10 * sim.Second
	}
	app.am = appmaster.New(appmaster.Config{
		App: name, Units: units, FullSyncInterval: fullSync,
	}, h.eng, h.net, h.top, appmaster.Callbacks{
		OnGrant:  app.onGrant,
		OnRevoke: app.onRevoke,
	})
	// Demand with a locality mix: some units pin a machine, some prefer a
	// rack, the rest are cluster-wide — exercising all three tree levels.
	// The demand follows registration after a registration round-trip's
	// worth of delay, mirroring how the example application masters behave.
	machines := h.top.Machines()
	racks := h.top.Racks()
	h.eng.After(sim.Millisecond, func() {
		for u := 1; u <= cfg.UnitsPerApp; u++ {
			var hints []resource.LocalityHint
			rest := cfg.ContainersPerUnit
			switch u % 10 {
			case 0:
				hints = append(hints, resource.LocalityHint{
					Type: resource.LocalityMachine, Value: machines[h.rng.Intn(len(machines))], Count: 1,
				})
				rest--
			case 1:
				hints = append(hints, resource.LocalityHint{
					Type: resource.LocalityRack, Value: racks[h.rng.Intn(len(racks))], Count: 1,
				})
				rest--
			}
			if rest > 0 {
				hints = append(hints, resource.LocalityHint{Type: resource.LocalityCluster, Count: rest})
			}
			app.pendingReq[u] = h.eng.Now()
			app.am.Request(u, hints...)
		}
	})
}

// hashDecision folds one grant/revoke the application masters observe
// into the running FNV-1a decision-stream hash, in delivery order (the
// simulator delivers deterministically): equal hashes across shard counts
// and steal policies witness byte-identical decision streams. Constants
// are shared with the observability checksum (obs.go).
func (h *harness) hashDecision(name string, unitID int, machine int32, count int, revoke bool) {
	if h.decHash == 0 {
		return
	}
	x := h.decHash
	for i := 0; i < len(name); i++ {
		x = (x ^ uint64(name[i])) * fnvPrime
	}
	fold := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			x = (x ^ (v >> s & 0xff)) * fnvPrime
		}
	}
	fold(uint64(unitID))
	fold(uint64(uint32(machine)))
	fold(uint64(count))
	if revoke {
		fold(1)
	} else {
		fold(0)
	}
	h.decHash = x
}

func (a *scaleApp) onGrant(unitID int, machine int32, count int) {
	h := a.h
	h.grants += uint64(count)
	h.hashDecision(a.name, unitID, machine, count, false)
	if h.cz != nil {
		h.cz.noteGrant(machine, count)
	}
	if h.pauseAt != 0 && h.eng.Now()-h.pauseAt > sim.Millisecond {
		// First grant from the promoted successor (the dead master's
		// in-flight deliveries all land within one message latency).
		h.schedPause.Observe(float64(h.eng.Now()-h.pauseAt) / float64(sim.Millisecond))
		h.pauseAt = 0
	}
	if at := a.pendingReq[unitID]; at != 0 {
		ms := float64(h.eng.Now()-at) / float64(sim.Millisecond)
		h.latency.Observe(ms)
		if h.rp != nil {
			h.rp.observeD2G(a.class, ms)
		} else if !h.cfg.Churn {
			// Per-app latency feeds the cross-run common-prefix comparison;
			// the churn section has no completion prefix to compare, so it
			// skips the per-grant map update.
			al := h.appLat[a.name]
			al.SumMS += ms
			al.N++
			if ms > al.MaxMS {
				al.MaxMS = ms
			}
			h.appLat[a.name] = al
		}
		a.pendingReq[unitID] = 0
	}
	if h.rp != nil {
		h.rp.grant(a, unitID, machine, count)
		return
	}
	if h.cfg.Churn {
		// Steady-state cycle: hold, then return-and-re-demand forever,
		// through a pooled record on the closure-free timer path.
		rec := h.getHold()
		rec.app, rec.unit, rec.machine, rec.count = a, unitID, machine, count
		h.eng.Post(h.cfg.HoldTime, h.holdFn, rec)
		return
	}
	// Hold the containers, then return them; revoked containers skip the
	// return (they re-enter via onRevoke's re-request).
	h.eng.PostFunc(h.cfg.HoldTime, func() {
		n := count
		if held := a.am.Held(unitID, machine); held < n {
			n = held
		}
		if n <= 0 {
			return
		}
		a.am.ReturnContainers(unitID, machine, n)
		a.remaining -= n
		if a.remaining <= 0 && !a.done {
			a.done = true
			a.am.Unregister()
			h.completed++
			h.names = append(h.names, a.name)
			if h.gw != nil {
				h.gw.JobCompleted(a.name)
			}
		}
	})
}

func (a *scaleApp) onRevoke(unitID int, machine int32, count int) {
	h := a.h
	h.revokes += uint64(count)
	h.hashDecision(a.name, unitID, machine, count, true)
	if h.cz != nil {
		h.cz.noteRevoke(count)
	}
	if h.rp != nil {
		h.rp.revokes[a.class] += uint64(count)
	}
	// Failover took the containers mid-hold: restate the demand so the
	// churn completes (paper §3.1 step 7 — the JobMaster re-requests).
	if a.pendingReq[unitID] == 0 {
		a.pendingReq[unitID] = h.eng.Now()
	}
	a.am.Request(unitID, resource.LocalityHint{Type: resource.LocalityCluster, Count: count})
}
