package scale

import (
	"testing"

	"repro/internal/sim"
)

// tinySMP shrinks every lane to unit-test size: the point is exercising
// the sweep mechanics and the parity witnesses, not measuring anything.
func tinySMP() SMPOptions {
	o := DefaultSMPOptions()
	o.Rounds = tiny()
	ch := DefaultChurnConfig()
	ch.Racks, ch.MachinesPerRack = 4, 5
	ch.Apps, ch.UnitsPerApp, ch.ContainersPerUnit = 20, 5, 2
	ch.ArrivalWindow = 5 * sim.Second
	ch.ChurnWarmup = 10 * sim.Second
	ch.ChurnMeasure = 10 * sim.Second
	ch.Horizon = ch.ChurnWarmup + ch.ChurnMeasure
	o.Churn = ch
	o.ShardCounts = []int{1, 2, 4}
	o.CoreRacks, o.CoreMachinesPerRack = 8, 5
	o.CoreApps = 4
	o.CoreRounds = 12
	return o
}

// TestRunSMPParityAndShape runs the tiny three-lane sweep and checks the
// contract the CI gate relies on: decision-stream parity across every
// shard count in every lane, populated speedup slices, and zero invariant
// violations in the kernel lane.
func TestRunSMPParityAndShape(t *testing.T) {
	opts := tinySMP()
	res, err := RunSMP(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ParityOK() {
		t.Fatalf("decision streams diverged: core=%v rounds=%v churn=%v",
			res.CoreParityOK, res.RoundsParityOK, res.ChurnParityOK)
	}
	n := len(opts.ShardCounts)
	if len(res.Core) != n || len(res.Rounds) != n || len(res.Churn) != n {
		t.Fatalf("lane lengths %d/%d/%d, want %d each", len(res.Core), len(res.Rounds), len(res.Churn), n)
	}
	if len(res.CoreSpeedup) != n || res.CoreSpeedup[0] != 1 {
		t.Errorf("core speedup slice %v, want length %d with baseline 1", res.CoreSpeedup, n)
	}
	for i, c := range res.Core {
		if c.Decisions == 0 || c.DecisionHash == "" {
			t.Errorf("core[%d]: %d decisions, hash %q", i, c.Decisions, c.DecisionHash)
		}
		if c.Invariants != 0 {
			t.Errorf("core[%d]: %d invariant violations", i, c.Invariants)
		}
		if c.Shards > 1 && c.CommitRatio <= 0 {
			t.Errorf("core[%d] shards=%d: commit ratio %.2f, want > 0", i, c.Shards, c.CommitRatio)
		}
	}
	for i := range res.Rounds {
		if res.Rounds[i].DecisionStreamHash == "" || res.Churn[i].DecisionStreamHash == "" {
			t.Errorf("lane %d: empty harness decision hash", i)
		}
		if len(res.Rounds[i].Invariants) > 0 || len(res.Churn[i].Invariants) > 0 {
			t.Errorf("lane %d: invariant violations %v / %v",
				i, res.Rounds[i].Invariants, res.Churn[i].Invariants)
		}
	}
	// The harness hash must be sensitive to the stream, not a constant:
	// a different seed must produce a different decision stream hash.
	seeded := opts
	seeded.ShardCounts = []int{1}
	seeded.Rounds.Seed = opts.Rounds.Seed + 7
	seeded.Churn.Seed = opts.Churn.Seed + 7
	other, err := RunSMP(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if other.Rounds[0].DecisionStreamHash == res.Rounds[0].DecisionStreamHash {
		t.Error("rounds decision hash did not change with the seed")
	}
}

// TestForceStealMatchesPlain pins the steal knob's decision-neutrality at
// the harness level: the same workload with every block routed through
// the work-stealing handoff must produce the identical decision stream.
func TestForceStealMatchesPlain(t *testing.T) {
	// The saturated smoke churn: every hold cycle frees wide swaths of
	// the cluster at once, so the batched rounds actually take the
	// parallel sweep path (sweeps narrower than the parallel threshold
	// run serial and would make this test vacuous).
	cfg := SmokeChurnConfig()
	cfg.Shards = 4
	cfg.RoundWindow = DefaultRoundWindow
	cfg.RecordDecisionHash = true
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ForceSteal = true
	stolen, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.DecisionStreamHash == "" || plain.DecisionStreamHash != stolen.DecisionStreamHash {
		t.Errorf("decision streams diverge under ForceSteal: %q vs %q",
			plain.DecisionStreamHash, stolen.DecisionStreamHash)
	}
	if stolen.ParallelSteals == 0 || stolen.ParallelSteals != stolen.ParallelBlocks {
		t.Errorf("ForceSteal run stole %d of %d blocks, want all",
			stolen.ParallelSteals, stolen.ParallelBlocks)
	}
}
