package scale

// Gateway mode: the paper-scale harness fronted by the multi-tenant
// submission gateway (internal/gateway). An open-loop load generator
// simulating a million-user tenant population — a uniform long tail plus a
// small heavy-hitter set — submits jobs through the gateway; every job the
// primary FuxiMaster acknowledges runs as a real application master through
// the usual churn (demand, grants, holds, returns, unregister), and the
// gateway's admit/shed decision stream, admission-latency percentiles, shed
// rates and per-class fairness land in the `gateway` section of
// BENCH_scale.json.

import (
	"hash/fnv"
	"strconv"

	"repro/internal/appmaster"
	"repro/internal/gateway"
	"repro/internal/resource"
	"repro/internal/sim"
)

// DefaultGatewayConfig is the paper-scale gateway run: 5,000 machines,
// 120k submissions from a 1,000,000-tenant population over 60 seconds
// (30% of traffic from 100 heavy hitters, so per-tenant rate limiting has
// something to bite), one mid-run master failover, and the cluster-wide
// invariant checker — admission conservation included — attached.
func DefaultGatewayConfig() Config {
	c := DefaultConfig()
	c.Apps = 0
	c.UnitsPerApp = 1
	c.ContainersPerUnit = 2
	c.HoldTime = 4 * sim.Second
	c.ArrivalWindow = 60 * sim.Second
	c.GatewayUsers = 1_000_000
	c.GatewaySubmissions = 120_000
	c.GatewayHotTenants = 100
	c.GatewayHotSharePct = 30
	c.GatewayServicePct = 20
	c.CheckInvariants = true
	// Most gateway jobs live a few seconds; a 10s safety-sync cadence made
	// the periodic full state exchange a per-job cost instead of a rare
	// repair path. 30s keeps the safety net (long-lived jobs still sync)
	// at production-sane overhead.
	c.FullSyncEvery = 30 * sim.Second
	return c.WithMasterFailovers(1)
}

// SmokeGatewayConfig is the CI-sized gateway run: 100 machines, 8k
// submissions from 50k tenants, still through one master failover.
func SmokeGatewayConfig() Config {
	c := DefaultGatewayConfig()
	c.Racks, c.MachinesPerRack = 10, 10
	c.GatewayUsers = 50_000
	c.GatewaySubmissions = 8_000
	c.ArrivalWindow = 20 * sim.Second
	c.Horizon = 3 * sim.Minute
	return c.WithMasterFailovers(1)
}

// workloadDone reports whether the run's workload finished: every app
// completed (classic mode), or every submission issued and settled to
// completed-or-shed (gateway mode).
func (h *harness) workloadDone() bool {
	if h.cfg.Churn {
		return false // steady state: the horizon is the only exit
	}
	if h.rp != nil {
		// Replay: the diurnal generator has passed its last day, every
		// scheduled burst submission has fired, and the gateway drained.
		return h.rp.genDone && h.rp.pendingBurst == 0 && h.gw.Drained()
	}
	if h.gw != nil {
		return h.gwSubmitted >= h.cfg.GatewaySubmissions && h.gw.Drained()
	}
	return h.completed >= h.cfg.Apps
}

// scheduleSubmissions drives the open-loop load generator: submissions at
// deterministic instants spread uniformly over ArrivalWindow, each from a
// tenant drawn either from the heavy-hitter set or uniformly from the full
// population. Tenant identity fixes the priority class.
func (h *harness) scheduleSubmissions() {
	cfg := h.cfg
	start := h.eng.Now()
	var next func()
	next = func() {
		i := h.gwSubmitted
		if i >= cfg.GatewaySubmissions {
			return
		}
		idx := h.pickTenant()
		class := gateway.ClassBatch
		if idx%100 < cfg.GatewayServicePct {
			class = gateway.ClassService
		}
		h.gw.Submit(gateway.Job{
			ID:     gwName("gw-", i, 6),
			Tenant: gwName("u-", idx, 7),
			Class:  class,
		})
		h.gwSubmitted++
		if h.gwSubmitted < cfg.GatewaySubmissions {
			at := start + sim.Time(int64(cfg.ArrivalWindow)*int64(h.gwSubmitted)/int64(cfg.GatewaySubmissions))
			h.eng.PostFunc(at-h.eng.Now(), next)
		}
	}
	h.eng.PostFunc(start-h.eng.Now(), next)
}

// gwName builds "<prefix><zero-padded n>" with one allocation (the open-loop
// generator mints two names per submission; fmt.Sprintf cost double and was
// visible in the per-admission allocation budget).
func gwName(prefix string, n, width int) string {
	var num [12]byte
	s := strconv.AppendInt(num[:0], int64(n), 10)
	var buf [24]byte
	b := append(buf[:0], prefix...)
	for i := len(s); i < width; i++ {
		b = append(b, '0')
	}
	b = append(b, s...)
	return string(b)
}

func (h *harness) pickTenant() int {
	cfg := h.cfg
	if cfg.GatewayHotTenants > 0 && cfg.GatewayHotSharePct > 0 &&
		h.rng.Intn(100) < cfg.GatewayHotSharePct {
		return h.rng.Intn(cfg.GatewayHotTenants)
	}
	return h.rng.Intn(cfg.GatewayUsers)
}

// jobMix hashes a job ID into a deterministic per-job value for shaping
// units and locality hints. A hash — rather than the harness rng — keeps
// each job's shape independent of registration timing, so a master
// failover shifting when jobs register cannot perturb the shared random
// stream the fault injector draws from.
func jobMix(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// gwUnits returns the shared single-unit definition slice for a (priority,
// size) combination — jobs never mutate their unit definitions, and both
// the AM and the master copy what they keep, so a handful of shared
// templates replaces one slice allocation per job. Multi-unit
// configurations fall back to per-job slices.
func (h *harness) gwUnits(prio, sizeIdx int) []resource.ScheduleUnit {
	if h.cfg.UnitsPerApp != 1 {
		units := make([]resource.ScheduleUnit, 0, h.cfg.UnitsPerApp)
		for u := 0; u < h.cfg.UnitsPerApp; u++ {
			units = append(units, resource.ScheduleUnit{
				ID: u + 1, Priority: prio, Size: unitSize(sizeIdx + u),
				MaxCount: h.cfg.ContainersPerUnit,
			})
		}
		return units
	}
	key := prio*3 + sizeIdx
	if h.gwUnitTmpl == nil {
		h.gwUnitTmpl = make(map[int][]resource.ScheduleUnit)
	}
	if t := h.gwUnitTmpl[key]; t != nil {
		return t
	}
	t := []resource.ScheduleUnit{{
		ID: 1, Priority: prio, Size: unitSize(sizeIdx),
		MaxCount: h.cfg.ContainersPerUnit,
	}}
	h.gwUnitTmpl[key] = t
	return t
}

// spawnGatewayJob starts the application master for one registered job —
// the gateway's OnRegistered callback. The job runs the same churn as the
// classic workload: request with a locality mix, hold, return, re-request
// on revocation, unregister when done (which completes the job at the
// gateway and frees its in-flight slot).
func (h *harness) spawnGatewayJob(j gateway.Job) {
	cfg := h.cfg
	mix := jobMix(j.ID)
	// Service jobs schedule ahead of batch jobs inside the cluster too.
	prio := 3
	if j.Class == gateway.ClassService {
		prio = 1
	}
	sizeIdx := int((mix >> 8) % 3)
	units := h.gwUnits(prio, sizeIdx)
	app := &scaleApp{
		h:          h,
		name:       j.ID,
		remaining:  cfg.UnitsPerApp * cfg.ContainersPerUnit,
		pendingReq: make([]sim.Time, cfg.UnitsPerApp+1),
	}
	h.apps = append(h.apps, app)
	fullSync := cfg.FullSyncEvery
	if fullSync == 0 {
		fullSync = 10 * sim.Second
	}
	app.am = appmaster.New(appmaster.Config{
		App: j.ID, QuotaGroup: j.Class.QuotaGroup(), Units: units,
		FullSyncInterval: fullSync,
	}, h.eng, h.net, h.top, appmaster.Callbacks{
		OnGrant:  app.onGrant,
		OnRevoke: app.onRevoke,
	})
	machines := h.top.Machines()
	racks := h.top.Racks()
	h.eng.PostFunc(sim.Millisecond, func() {
		for u := 1; u <= cfg.UnitsPerApp; u++ {
			var hints []resource.LocalityHint
			rest := cfg.ContainersPerUnit
			pick := mix + uint64(u)*2654435761
			switch pick % 8 {
			case 0:
				hints = append(hints, resource.LocalityHint{
					Type: resource.LocalityMachine, Value: machines[pick>>16%uint64(len(machines))], Count: 1,
				})
				rest--
			case 1:
				hints = append(hints, resource.LocalityHint{
					Type: resource.LocalityRack, Value: racks[pick>>16%uint64(len(racks))], Count: 1,
				})
				rest--
			}
			if rest > 0 {
				hints = append(hints, resource.LocalityHint{Type: resource.LocalityCluster, Count: rest})
			}
			app.pendingReq[u] = h.eng.Now()
			app.am.Request(u, hints...)
		}
	})
}
