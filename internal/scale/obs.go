package scale

// Observability mode: the steady-state churn workload with the master's
// ring-buffered time-series plane enabled (master.Config.Obs). Every
// scheduling round the primary records one sample row — cluster and
// per-rack free/granted capacity, cluster-queue depth by size class,
// preemption and flap counters, checkpoint write/byte counters, transport
// totals — and the harness's sampler hook appends its own series to the
// same row: workload grant/revoke counters, gateway shed (when a gateway is
// deployed), and per-link sent/dropped counters for a watched set of
// machines whose links the schedule deliberately flaps mid-run. A query
// client then interrogates the live store over the transport on a fixed
// virtual-time cadence — windowed scans with last/min/max/p50/p99
// downsampling and rack/class group-by — while the run is under load,
// proving the analytical read path works against live state without
// perturbing the update path (the record path stays alloc-free; the CI
// budget gates it). Results land in the `obs` section of BENCH_scale.json.
//
// The virtual-time-derived fields of ObsStats — everything except the
// wall-clock query latencies and the allocation calibration — are
// byte-identical across shard counts, and QueryChecksum (an FNV-1a hash
// over every query response's content, ServerNS excluded) pins the whole
// live-query conversation, not just its volume.

import (
	"runtime"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/transport"
)

// DefaultObsConfig is the paper-scale observability run: the 5,000-machine
// churn workload with the time-series plane on. The ring retains 1,024
// rounds (~20 s at the 20 ms round window), so the run wraps the ring
// several times; live queries fire every 5 s.
func DefaultObsConfig() Config {
	c := DefaultChurnConfig()
	c.Obs = true
	c.CheckInvariants = true
	c.ObsRetain = 1024
	c.ObsQueryEvery = 5 * sim.Second
	return c
}

// SmokeObsConfig is the CI-sized observability run: the 100-machine churn
// smoke with a 256-row ring — the ~400 rounds the 50 s horizon records wrap
// it, so the smoke lane exercises eviction too — and a 2 s query cadence.
func SmokeObsConfig() Config {
	c := SmokeChurnConfig()
	c.Obs = true
	c.CheckInvariants = true
	c.ObsRetain = 256
	c.ObsQueryEvery = 2 * sim.Second
	return c
}

const (
	// obsFlapDur is the link-down half of each scheduled flap window. It is
	// deliberately far below the master's 3 s heartbeat timeout: the flap
	// must surface as per-link loss in the time-series, not as a machine
	// death and revocation wave.
	obsFlapDur = 500 * sim.Millisecond
	// obsQueryWindow is each live query's lookback window.
	obsQueryWindow = 10 * sim.Second
	// obsCalibrationRounds sizes the post-run allocation calibration.
	obsCalibrationRounds = 200
)

// obsQueryMetrics is the rotation of live queries the client issues: a
// cluster gauge, a per-rack group-by, the per-class queue depths, the
// watched-link loss counters, and a harness counter series.
var obsQueryMetrics = []string{
	"cluster.free_cpu",
	"rack.free_cpu",
	"queue.depth",
	"link.dropped",
	"churn.grants",
	"cluster.granted_cpu",
}

// obsState is the observability-mode bookkeeping: the shared store, the
// harness-side series, the watched-link set, the flap schedule, and the
// live query client.
type obsState struct {
	h     *harness
	store *obs.Store

	clientEP transport.EndpointID
	masterEP transport.EndpointID

	// Harness series recorded on the master's sampler hook.
	grantsID  obs.SeriesID
	revokesID obs.SeriesID
	shedID    obs.SeriesID

	// watched machines (dense IDs) and their agent endpoints; linkSent and
	// linkDropped are the per-machine series, each the sum of the
	// master→agent and agent→master directions.
	watched     []int32
	watchedEP   []transport.EndpointID
	linkSent    []obs.SeriesID
	linkDropped []obs.SeriesID

	flapWindows int

	// Live-query client state.
	seq          uint64
	queries      int
	responses    int
	queryResults int
	checksum     uint64
	qlat         *metrics.Histogram // wall-clock server ns per query, in µs
}

func newObsState(h *harness) *obsState {
	retain := h.cfg.ObsRetain
	if retain <= 0 {
		retain = 1024
	}
	o := &obsState{
		h:        h,
		store:    obs.NewStore(retain),
		checksum: fnvOffset,
		qlat:     h.reg.Histogram("scale.obs_query_us"),
	}
	o.grantsID = o.store.Register("churn.grants", "")
	o.revokesID = o.store.Register("churn.revokes", "")
	o.shedID = o.store.Register("gw.shed", "")
	return o
}

// schedule arms the watched-link set, the flap windows, and the live query
// cadence. Called after the masters and workload are wired (it needs the
// transport endpoints registered). The watched set is machine 0 (a control
// that never flaps) plus two victims; the two flap windows sit at one
// quarter and one half of the measurement window, so the loss shows up as
// two distinct bumps in the dropped-counter series.
func (o *obsState) schedule() {
	h := o.h
	h.net.EnableLinkStats()
	o.masterEP = h.net.Endpoint(protocol.MasterEndpoint)
	o.clientEP = h.net.Endpoint("obsclient")
	h.net.Register("obsclient", o.onResponse)

	machines := h.top.Machines()
	watch := []int{0}
	if len(machines) > 2 {
		watch = append(watch, 1, 2)
	}
	for _, idx := range watch {
		name := machines[idx]
		o.watched = append(o.watched, h.top.MachineID(name))
		o.watchedEP = append(o.watchedEP, h.net.Endpoint(protocol.AgentEndpoint(name)))
		o.linkSent = append(o.linkSent, o.store.Register("link.sent", name))
		o.linkDropped = append(o.linkDropped, o.store.Register("link.dropped", name))
	}

	if len(watch) > 1 {
		measureStart := h.cfg.ChurnWarmup
		measure := h.cfg.ChurnMeasure
		if !h.cfg.Churn {
			measureStart, measure = 0, h.cfg.Horizon
		}
		victims := watch[1:]
		flapAt := []sim.Time{measureStart + measure/4, measureStart + measure/2}
		for i, at := range flapAt {
			ep := protocol.AgentEndpoint(machines[victims[i%len(victims)]])
			h.eng.At(at, func() {
				o.flapWindows++
				h.net.SetLinkDown(ep, true)
				h.eng.After(obsFlapDur, func() { h.net.SetLinkDown(ep, false) })
			})
		}
	}

	if h.cfg.ObsQueryEvery > 0 {
		h.eng.Every(h.cfg.ObsQueryEvery, o.issueQuery)
	}
}

// sample is the master's ObsSampler hook: the master has just advanced the
// ring and recorded its own series into the current row; append the
// harness's. Alloc-free — it is inside the calibrated record path.
func (o *obsState) sample(now sim.Time) {
	st := o.store
	st.Set(o.grantsID, int64(o.h.grants))
	st.Set(o.revokesID, int64(o.h.revokes))
	if o.h.gw != nil {
		st.Set(o.shedID, int64(o.h.gw.ShedTotal()))
	}
	for i, ep := range o.watchedEP {
		s1, _, d1, _ := o.h.net.LinkCountsID(o.masterEP, ep)
		s2, _, d2, _ := o.h.net.LinkCountsID(ep, o.masterEP)
		st.Set(o.linkSent[i], int64(s1+s2))
		st.Set(o.linkDropped[i], int64(d1+d2))
	}
}

// issueQuery sends the next query of the rotation: a windowed scan over the
// last obsQueryWindow of one metric, group-by over all its series.
func (o *obsState) issueQuery() {
	from := o.h.eng.Now() - obsQueryWindow
	if from < 0 {
		from = 0
	}
	metric := obsQueryMetrics[int(o.seq)%len(obsQueryMetrics)]
	o.seq++
	o.queries++
	o.h.net.SendID(o.clientEP, o.masterEP, obs.QueryRequest{
		Metric: metric, FromUS: int64(from), Seq: o.seq,
	})
}

// onResponse folds each query response into the conversation checksum
// (FNV-1a over everything but the wall-clock ServerNS) and the query
// latency histogram.
func (o *obsState) onResponse(_ transport.EndpointID, msg transport.Message) {
	r, ok := msg.(obs.QueryResponse)
	if !ok {
		return
	}
	o.responses++
	o.queryResults += len(r.Results)
	o.qlat.Observe(float64(r.ServerNS) / 1e3)
	h := o.checksum
	h = fnvString(h, r.Metric)
	h = fnvInt(h, int64(r.Samples))
	h = fnvInt(h, int64(r.Epoch))
	h = fnvInt(h, int64(r.Seq))
	for _, a := range r.Results {
		h = fnvString(h, a.Group)
		h = fnvInt(h, a.Count)
		h = fnvInt(h, a.Last)
		h = fnvInt(h, a.Min)
		h = fnvInt(h, a.Max)
		h = fnvInt(h, a.Sum)
		h = fnvInt(h, a.P50)
		h = fnvInt(h, a.P99)
	}
	o.checksum = h
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvInt(h uint64, v int64) uint64 {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= fnvPrime
		u >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// ObsStats is the `obs` section of BENCH_scale.json. Every field except the
// wall-clock query latencies (QueryP50US/QueryP99US) and the allocation
// calibration (AllocsPerSample) derives from virtual time and is
// byte-identical across shard counts; the struct is comparable so the
// determinism test asserts whole-struct equality with those fields zeroed.
type ObsStats struct {
	// Ring shape: registered series, ring capacity in rows, rows currently
	// retained, rows recorded over the whole run (Total > Retained proves
	// the ring wrapped), and bytes per row (8 bytes per series plus the
	// timestamp column).
	Series          int    `json:"series"`
	RingCapacity    int    `json:"ring_capacity"`
	SamplesRetained int    `json:"samples_retained"`
	SamplesTotal    uint64 `json:"samples_total"`
	BytesPerSample  int    `json:"bytes_per_sample"`
	// AllocsPerSample is the post-run calibration: allocations per record
	// pass, measured over obsCalibrationRounds extra samples on the live
	// primary (budget-gated at 0 in CI; wall-clock-adjacent, excluded from
	// determinism comparison).
	AllocsPerSample float64 `json:"allocs_per_sample"`

	// Live query conversation: queries issued, responses received (they
	// differ only if the run ends with one in flight), total group-by rows
	// returned, and the FNV-1a checksum over every response's content
	// (ServerNS excluded).
	Queries       int    `json:"queries"`
	Responses     int    `json:"responses"`
	QueryResults  int    `json:"query_results"`
	QueryChecksum uint64 `json:"query_checksum"`
	// Wall-clock server-side query cost in microseconds (excluded from
	// determinism comparison).
	QueryP50US float64 `json:"query_p50_us"`
	QueryP99US float64 `json:"query_p99_us"`

	// Loss attribution: watched machine links, flap windows executed, and
	// the final dropped-message total across the watched links — the value
	// the link.dropped series converges to (> 0 iff flaps fired).
	WatchedLinks      int   `json:"watched_links"`
	FlapWindows       int   `json:"flap_windows"`
	LinkDropsObserved int64 `json:"link_drops_observed"`

	// Incremental checkpoint accounting (the delta-log half of the PR):
	// write counts, byte split, compactions, bytes per registered job, and
	// the measured saving over re-encoding a full snapshot on every write
	// (TrackFullCost; the acceptance gate requires >= 5x).
	CheckpointWrites        int     `json:"checkpoint_writes"`
	CheckpointDeltaBytes    int64   `json:"checkpoint_delta_bytes"`
	CheckpointAnchorBytes   int64   `json:"checkpoint_anchor_bytes"`
	CheckpointBytes         int64   `json:"checkpoint_bytes"`
	CheckpointCompactions   int     `json:"checkpoint_compactions"`
	CheckpointBytesPerJob   float64 `json:"checkpoint_bytes_per_job"`
	FullSnapshotBytesPerJob float64 `json:"full_snapshot_bytes_per_job"`
	CheckpointSavingsX      float64 `json:"checkpoint_savings_x"`
}

// snapshot builds the obs section. The ring-shape fields are captured
// before the allocation calibration runs (the calibration advances the ring
// by obsCalibrationRounds extra rows).
func (o *obsState) snapshot(h *harness) *ObsStats {
	st := &ObsStats{
		Series:          o.store.SeriesCount(),
		RingCapacity:    o.store.Cap(),
		SamplesRetained: o.store.Len(),
		SamplesTotal:    o.store.Total(),
		BytesPerSample:  o.store.BytesPerSample(),
		Queries:         o.queries,
		Responses:       o.responses,
		QueryResults:    o.queryResults,
		QueryChecksum:   o.checksum,
		QueryP50US:      o.qlat.Quantile(0.5),
		QueryP99US:      o.qlat.Quantile(0.99),
		WatchedLinks:    len(o.watched),
		FlapWindows:     o.flapWindows,
	}
	for _, ep := range o.watchedEP {
		_, _, d1, _ := h.net.LinkCountsID(o.masterEP, ep)
		_, _, d2, _ := h.net.LinkCountsID(ep, o.masterEP)
		st.LinkDropsObserved += int64(d1 + d2)
	}

	ck := h.ckpt
	st.CheckpointWrites = ck.Writes
	st.CheckpointDeltaBytes = ck.DeltaBytes
	st.CheckpointAnchorBytes = ck.AnchorBytes
	st.CheckpointBytes = ck.Bytes()
	st.CheckpointCompactions = ck.Compactions
	jobs := h.cfg.Apps
	if h.gw != nil {
		jobs = int(h.gw.Snapshot().Registered)
	}
	if jobs > 0 {
		st.CheckpointBytesPerJob = float64(ck.Bytes()) / float64(jobs)
		if ck.TrackFullCost {
			st.FullSnapshotBytesPerJob = float64(ck.FullBytes) / float64(jobs)
		}
	}
	if ck.TrackFullCost && ck.Bytes() > 0 {
		st.CheckpointSavingsX = float64(ck.FullBytes) / float64(ck.Bytes())
	}

	// Allocation calibration last: drive the full record path (master
	// series, queue-depth sweep, harness sampler hook) on the live primary
	// and count allocations per pass.
	if p := h.primary(); p != nil {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < obsCalibrationRounds; i++ {
			p.SampleObs()
		}
		runtime.ReadMemStats(&after)
		st.AllocsPerSample = float64(after.Mallocs-before.Mallocs) / obsCalibrationRounds
	}
	return st
}
