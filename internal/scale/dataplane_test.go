package scale

import (
	"testing"

	"repro/internal/sim"
)

// tinyDataplane is a seconds-scale data-plane run: a 20-machine cluster with
// a small GraySort/DAG/service mix and full kernel verification.
func tinyDataplane() Config {
	c := SmokeDataplaneConfig()
	c.Racks, c.MachinesPerRack = 4, 5
	c.GraySortJobs = 2
	c.GraySortDataMB = 512 // 2 chunks -> 2-wide stages
	c.DAGJobs = 2
	c.ServiceJobs = 2
	c.ServiceWorkers = 1
	c.ServiceOps = 2
	c.ServiceOpEvery = 500 * sim.Millisecond
	c.VerifyRecords = 256
	c.VerifySampleEvery = 1
	c.ArrivalWindow = 2 * sim.Second
	c.FailoverEvery = 0
	c.Horizon = 2 * sim.Minute
	return c
}

func TestDataplaneSmoke(t *testing.T) {
	cfg := tinyDataplane()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Truncated {
		t.Fatalf("dataplane run truncated at sim %.1fs: %d/%d jobs",
			r.SimSeconds, r.Dataplane.CompletedJobs, cfg.GraySortJobs+cfg.DAGJobs+cfg.ServiceJobs)
	}
	if len(r.Invariants) > 0 {
		t.Fatalf("invariant violations: %v", r.Invariants)
	}
	d := r.Dataplane
	if d == nil {
		t.Fatal("no dataplane section")
	}
	total := cfg.GraySortJobs + cfg.DAGJobs + cfg.ServiceJobs
	if d.CompletedJobs != total {
		t.Fatalf("completed %d/%d jobs", d.CompletedJobs, total)
	}
	if r.Gateway == nil || int(r.Gateway.Completed) != total {
		t.Fatalf("gateway section missing or incomplete: %+v", r.Gateway)
	}
	// Every GraySort job is sampled at VerifySampleEvery=1 and must pass the
	// real kernel check; every service op must conserve records.
	if d.VerifiedPartitions != cfg.GraySortJobs || d.VerifyFailures != 0 {
		t.Errorf("verified %d (want %d), failures %d", d.VerifiedPartitions, cfg.GraySortJobs, d.VerifyFailures)
	}
	wantOps := cfg.ServiceJobs * cfg.ServiceOps
	if d.ServiceOpsRun != wantOps || d.ServiceOpFailures != 0 {
		t.Errorf("service ops %d (want %d), failures %d", d.ServiceOpsRun, wantOps, d.ServiceOpFailures)
	}
	// Locality demand must be exercised and mostly honored on an idle tiny
	// cluster; shuffle accounting must see cross-stage volume.
	grants := d.LocalityMachineGrants + d.LocalityRackGrants + d.LocalityRemoteGrants
	if grants == 0 {
		t.Fatal("no locality-tracked grants")
	}
	if d.LocalityHitRatePct < 50 {
		t.Errorf("locality hit rate %.1f%% on an uncontended cluster", d.LocalityHitRatePct)
	}
	if d.ShuffledMB+d.LocalMB <= 0 {
		t.Error("no shuffle volume accounted")
	}
	if d.MakespanP50MS <= 0 || d.MakespanMaxMS < d.MakespanP50MS {
		t.Errorf("makespan percentiles inconsistent: p50 %.1f max %.1f", d.MakespanP50MS, d.MakespanMaxMS)
	}
	if d.Service.Jobs != cfg.ServiceJobs || d.Batch.Jobs != cfg.GraySortJobs+cfg.DAGJobs {
		t.Errorf("class job counts: service %d batch %d", d.Service.Jobs, d.Batch.Jobs)
	}
	if d.Service.SLOAttainedPct <= 0 {
		t.Error("service SLO attainment not measured")
	}
}

// TestDataplaneShardParity pins the decision-stream determinism contract in
// dataplane mode: the sharded parallel scheduler must produce the same
// grants, revocations, completions, locality classification, shuffle volume
// and gateway decision hash as the serial scheduler.
func TestDataplaneShardParity(t *testing.T) {
	base := tinyDataplane()
	// Same 20ms scheduling rounds everywhere: the contract is that the shard
	// count never changes outcomes, not that batched rounds equal unbatched
	// scheduling.
	base.RoundWindow = DefaultRoundWindow
	run := func(shards int) *Result {
		cfg := base
		cfg.Shards = shards
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial := run(0)
	// Shard counts beyond the sweep width must not change any outcome.
	for _, shards := range []int{2, 4} {
		par := run(shards)
		if par.Truncated || serial.Truncated {
			t.Fatal("parity run truncated")
		}
		if par.Dataplane.CompletedJobs != serial.Dataplane.CompletedJobs {
			t.Errorf("shards=%d completed %d, serial %d", shards, par.Dataplane.CompletedJobs, serial.Dataplane.CompletedJobs)
		}
		if par.Gateway.DecisionHash != serial.Gateway.DecisionHash {
			t.Errorf("shards=%d gateway decision hash %s, serial %s", shards, par.Gateway.DecisionHash, serial.Gateway.DecisionHash)
		}
		if par.Grants != serial.Grants || par.Revokes != serial.Revokes {
			t.Errorf("shards=%d grants/revokes %d/%d, serial %d/%d",
				shards, par.Grants, par.Revokes, serial.Grants, serial.Revokes)
		}
		ps, ss := par.Dataplane, serial.Dataplane
		if ps.LocalityMachineGrants != ss.LocalityMachineGrants ||
			ps.LocalityRackGrants != ss.LocalityRackGrants ||
			ps.LocalityRemoteGrants != ss.LocalityRemoteGrants {
			t.Errorf("shards=%d locality %d/%d/%d, serial %d/%d/%d", shards,
				ps.LocalityMachineGrants, ps.LocalityRackGrants, ps.LocalityRemoteGrants,
				ss.LocalityMachineGrants, ss.LocalityRackGrants, ss.LocalityRemoteGrants)
		}
		if ps.ShuffledMB != ss.ShuffledMB || ps.LocalMB != ss.LocalMB {
			t.Errorf("shards=%d shuffle %f/%f, serial %f/%f", shards, ps.ShuffledMB, ps.LocalMB, ss.ShuffledMB, ss.LocalMB)
		}
		if ps.VerifyFailures != 0 || ps.ServiceOpFailures != 0 {
			t.Errorf("shards=%d kernel failures: verify %d ops %d", shards, ps.VerifyFailures, ps.ServiceOpFailures)
		}
	}
}

// TestDataplaneSurvivesMachineFailover exercises the revoke → re-demand path:
// with machines crashing every second, every job must still complete and
// every sampled kernel check still pass.
func TestDataplaneSurvivesMachineFailover(t *testing.T) {
	cfg := tinyDataplane()
	cfg.FailoverEvery = 1 * sim.Second
	cfg.FailoverDowntime = 4 * sim.Second
	cfg.Horizon = 4 * sim.Minute
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Truncated {
		t.Fatalf("failover dataplane run truncated: %d jobs done at sim %.1fs",
			r.Dataplane.CompletedJobs, r.SimSeconds)
	}
	if len(r.Invariants) > 0 {
		t.Fatalf("invariant violations: %v", r.Invariants)
	}
	d := r.Dataplane
	total := cfg.GraySortJobs + cfg.DAGJobs + cfg.ServiceJobs
	if d.CompletedJobs != total {
		t.Fatalf("completed %d/%d jobs under failover churn", d.CompletedJobs, total)
	}
	if d.VerifyFailures != 0 || d.ServiceOpFailures != 0 {
		t.Errorf("kernel failures under failover: verify %d ops %d", d.VerifyFailures, d.ServiceOpFailures)
	}
	if r.Revokes == 0 {
		t.Error("failover run saw no revocations — crash injection inert")
	}
}

func TestDataplaneConfigValidation(t *testing.T) {
	cfg := tinyDataplane()
	cfg.GraySortJobs, cfg.DAGJobs, cfg.ServiceJobs = 0, 0, 0
	if _, err := Run(cfg); err == nil {
		t.Error("empty dataplane workload accepted")
	}
	cfg = tinyDataplane()
	cfg.ServiceOpEvery = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero service op period accepted")
	}
}
