package scale

import (
	"testing"

	"repro/internal/sim"
)

// czTiny returns a chaos configuration small enough for unit tests: the
// 20-machine churn workload with two partition storms (6 s — past the 3 s
// heartbeat timeout — and 2 s — below it), a link-flap window, delay spikes,
// and a lock-service partition of the primary, all inside a 30-second
// horizon.
func czTiny() Config {
	c := SmokeChaosConfig()
	c.Racks, c.MachinesPerRack = 4, 5
	c.Apps, c.UnitsPerApp = 30, 5
	c.ContainersPerUnit = 3
	c.HoldTime = 2 * sim.Second
	c.ArrivalWindow = 3 * sim.Second
	c.ChurnWarmup = 6 * sim.Second
	c.ChurnMeasure = 24 * sim.Second
	c.Horizon = c.ChurnWarmup + c.ChurnMeasure
	c.ChaosPartitionAt = []sim.Time{8 * sim.Second, 17 * sim.Second}
	c.ChaosPartitionFor = []sim.Time{6 * sim.Second, 2 * sim.Second}
	c.ChaosPartitionPct = 10 // 2 machines per storm
	c.ChaosFlapAt = []sim.Time{20 * sim.Second}
	c.ChaosFlaps = 1
	c.ChaosSpikeAt = []sim.Time{22 * sim.Second}
	c.ChaosSpikes = 1
	c.ChaosLockPartitionAt = 23 * sim.Second
	c.ChaosLockPartitionFor = 5 * sim.Second
	return c
}

func TestChaosRunCompletes(t *testing.T) {
	cfg := czTiny()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Invariants) > 0 {
		t.Errorf("invariant violations under chaos: %v", res.Invariants)
	}
	if res.InvariantChecks == 0 {
		t.Error("invariant checker never ran")
	}
	cz := res.Chaos
	if cz == nil {
		t.Fatal("no chaos section in the result")
	}

	// Every scheduled storm landed and healed.
	if cz.Partitions != 2 || cz.Heals != 2 {
		t.Errorf("partitions=%d heals=%d, want 2/2", cz.Partitions, cz.Heals)
	}
	if cz.MachinesPartitioned != 4 {
		t.Errorf("machines partitioned %d, want 4 (2 per storm)", cz.MachinesPartitioned)
	}
	if cz.LinkFlaps != 1 || cz.DelaySpikes != 1 {
		t.Errorf("flaps=%d spikes=%d, want 1/1", cz.LinkFlaps, cz.DelaySpikes)
	}
	if cz.InjectionsSkipped != 0 {
		t.Errorf("%d injections skipped", cz.InjectionsSkipped)
	}

	// Every heal window reconverged, and the probe measured real time doing
	// it (convergence cannot be instantaneous: the heal-time capacity resync
	// takes at least a round trip).
	if cz.Unconverged != 0 {
		t.Fatalf("%d heal windows never reconverged", cz.Unconverged)
	}
	if cz.ConvergenceP99MS <= 0 || cz.ConvergenceMaxMS < cz.ConvergenceP99MS ||
		cz.ConvergenceP99MS < cz.ConvergenceP50MS {
		t.Errorf("convergence percentiles inconsistent: p50=%.1f p99=%.1f max=%.1f",
			cz.ConvergenceP50MS, cz.ConvergenceP99MS, cz.ConvergenceMaxMS)
	}

	// The 6-second storm outlived the heartbeat timeout: the master declared
	// the victims dead, revoked their grants (lost), and repair traffic
	// re-landed on them after the heal (reissued).
	if cz.LostGrants == 0 {
		t.Error("no grants lost through a storm longer than the heartbeat timeout")
	}
	if cz.ReissuedGrants == 0 {
		t.Error("no grants reissued onto healed machines")
	}

	// The lock partition forced a promotion: the deposed primary fenced
	// itself and the standby took the lease at a higher epoch.
	if cz.LockPartitions != 1 {
		t.Errorf("lock partitions %d, want 1", cz.LockPartitions)
	}
	if cz.MasterEpoch < 2 {
		t.Errorf("master epoch %d after a lock partition, want >= 2", cz.MasterEpoch)
	}

	// The partition actually dropped traffic, attributed per link.
	if cz.LinksWithLoss == 0 || cz.LinkMsgsDropped == 0 {
		t.Errorf("no link loss recorded: links=%d dropped=%d", cz.LinksWithLoss, cz.LinkMsgsDropped)
	}
	if cz.WorstLink == "" || cz.WorstLinkDropped == 0 {
		t.Errorf("worst link not attributed: %q dropped %d", cz.WorstLink, cz.WorstLinkDropped)
	}

	// Budget plumbing: unconverged heal windows fail unconditionally, and
	// the calibrated gates trip when set below the measured values.
	if bad := res.CheckBudgets(Budgets{MaxChaosConvergenceP99MS: cz.ConvergenceP99MS / 2}); len(bad) != 1 {
		t.Errorf("convergence budget did not trip: %v", bad)
	}
	if bad := res.CheckBudgets(Budgets{MaxChaosConvergenceP99MS: cz.ConvergenceP99MS + 1}); len(bad) != 0 {
		t.Errorf("in-budget run flagged: %v", bad)
	}
}

// TestChaosDeterminismAndShardParity runs the identical chaos schedule twice
// at shards=1 and once at shards=4: every measurement — storm accounting,
// convergence percentiles, lost/reissued counts, per-link loss attribution —
// must be identical. The whole ChaosStats struct is comparable, so the runs
// must agree field for field.
func TestChaosDeterminismAndShardParity(t *testing.T) {
	base := czTiny()
	base.ChurnMeasure = 16 * sim.Second
	base.Horizon = base.ChurnWarmup + base.ChurnMeasure
	base.ChaosPartitionAt = []sim.Time{8 * sim.Second}
	base.ChaosPartitionFor = []sim.Time{6 * sim.Second}
	base.ChaosFlapAt = []sim.Time{16 * sim.Second}
	base.ChaosSpikeAt = []sim.Time{17 * sim.Second}
	base.ChaosLockPartitionAt = 0
	base.ChaosLockPartitionFor = 0

	var ref *ChaosStats
	for _, variant := range []struct {
		name   string
		shards int
	}{
		{"shards-1-a", 1}, {"shards-1-b", 1}, {"shards-4", 4},
	} {
		cfg := base
		cfg.Shards = variant.shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Chaos == nil {
			t.Fatalf("%s: no chaos section", variant.name)
		}
		if len(res.Invariants) > 0 {
			t.Errorf("%s: invariant violations: %v", variant.name, res.Invariants)
		}
		if ref == nil {
			ref = res.Chaos
			if ref.Partitions != 1 || ref.Unconverged != 0 || ref.ConvergenceMaxMS <= 0 {
				t.Fatalf("reference run measured nothing useful: %+v", ref)
			}
			continue
		}
		if *res.Chaos != *ref {
			t.Errorf("%s: chaos stats diverge:\n got %+v\nwant %+v",
				variant.name, *res.Chaos, *ref)
		}
	}
}

func TestChaosRejectsGatewayMode(t *testing.T) {
	cfg := czTiny()
	cfg.GatewayUsers = 100
	cfg.GatewaySubmissions = 10
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for chaos + gateway mode")
	}
}
