package scale

// Steady-state churn mode: the benchmark section that measures the
// scheduler where its cost actually lives in production — the long-horizon
// release/re-demand cycle, with no arrivals, no completions and no
// failovers inside the measurement window. Every granted container is held
// for HoldTime, returned, and immediately re-demanded at cluster scope, so
// the cluster sits in the saturated regime where each scheduling round is:
// coalesced releases → one wide assignment sweep over the freed machines →
// merged demand placement → batched fan-out. Decision throughput and
// allocations per decision are measured strictly after ChurnWarmup, over a
// ChurnMeasure-long window, so registration and cold-cache effects are
// excluded — this is the section the tightened allocs/decision budget
// gates in CI.

import (
	"repro/internal/resource"
	"repro/internal/sim"
)

// DefaultChurnConfig is the paper-scale steady-state churn run: 5,000
// machines, 100k schedule units cycling hold/return/re-demand forever,
// measured for a minute of virtual time after a warmup that covers arrival
// and two full hold cycles.
func DefaultChurnConfig() Config {
	c := DefaultConfig()
	c.Churn = true
	c.FailoverEvery = 0 // steady state: no machine failovers
	// High churn: containers cycle every 5s, so the measured minute covers
	// twelve full hold cycles of the whole cluster.
	c.HoldTime = 5 * sim.Second
	c.FullSyncEvery = 30 * sim.Second
	c.ArrivalWindow = 20 * sim.Second
	c.ChurnWarmup = 40 * sim.Second
	c.ChurnMeasure = 60 * sim.Second
	c.Horizon = c.ChurnWarmup + c.ChurnMeasure
	c.RoundWindow = DefaultRoundWindow
	return c
}

// SmokeChurnConfig is the CI-sized churn run: 100 machines, 2,000 units.
func SmokeChurnConfig() Config {
	c := DefaultChurnConfig()
	c.Racks, c.MachinesPerRack = 10, 10
	c.Apps, c.UnitsPerApp = 100, 20
	c.ArrivalWindow = 5 * sim.Second
	c.ChurnWarmup = 20 * sim.Second
	c.ChurnMeasure = 30 * sim.Second
	c.Horizon = c.ChurnWarmup + c.ChurnMeasure
	return c
}

// holdRec is one pooled hold-expiry record: the churn driver schedules one
// per grant through the engine's closure-free Post path, so the steady
// state allocates no per-grant timer closures.
type holdRec struct {
	app     *scaleApp
	unit    int
	machine int32
	count   int
}

func (h *harness) getHold() *holdRec {
	if n := len(h.holdFree); n > 0 {
		rec := h.holdFree[n-1]
		h.holdFree[n-1] = nil
		h.holdFree = h.holdFree[:n-1]
		return rec
	}
	return &holdRec{}
}

// holdExpire is the churn cycle's second half: return the held containers
// and restate the demand at cluster scope, keeping the cluster in its
// saturated steady state. The re-demand is deferred to the end of the
// instant so that all of an instant's expiries coalesce: every app's
// returns merge into one GrantReturnBatch before its first demand update
// flushes them, and the master still applies the whole round's releases
// before its demand phase.
func (h *harness) holdExpire(a any) {
	rec := a.(*holdRec)
	app, unit, mc, n := rec.app, rec.unit, rec.machine, rec.count
	if held := app.am.Held(unit, mc); held < n {
		n = held
	}
	if n <= 0 {
		rec.app = nil
		h.holdFree = append(h.holdFree, rec)
		return
	}
	app.am.ReturnContainers(unit, mc, n)
	for unit >= len(app.reqCount) {
		app.reqCount = append(app.reqCount, 0)
	}
	if app.reqCount[unit] == 0 {
		rec.count = 0 // rec now just marks the (app, unit) pair
		h.reqPend = append(h.reqPend, rec)
	} else {
		rec.app = nil
		h.holdFree = append(h.holdFree, rec)
	}
	app.reqCount[unit] += n
	if !h.reqArmed {
		h.reqArmed = true
		h.eng.PostFunc(0, h.flushRedemand)
	}
}

// flushRedemand issues the deferred re-demands of one instant, one
// DemandUpdate per (app, unit), and recycles the hold records.
func (h *harness) flushRedemand() {
	h.reqArmed = false
	for _, rec := range h.reqPend {
		app, unit := rec.app, rec.unit
		n := app.reqCount[unit]
		app.reqCount[unit] = 0
		if app.pendingReq[unit] == 0 {
			app.pendingReq[unit] = h.eng.Now()
		}
		app.am.Request(unit, resource.LocalityHint{Type: resource.LocalityCluster, Count: n})
		rec.app = nil
		h.holdFree = append(h.holdFree, rec)
	}
	h.reqPend = h.reqPend[:0]
}
