package scale

import (
	"testing"
	"time"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	c := DefaultConfig()
	c.Racks, c.MachinesPerRack = 4, 5
	c.Apps, c.UnitsPerApp, c.ContainersPerUnit = 20, 5, 2
	c.ArrivalWindow = 5 * 1000 * 1000 // 5 sim-seconds
	c.FailoverEvery = 3 * 1000 * 1000
	return c
}

func TestSmokeRunCompletes(t *testing.T) {
	cfg := SmokeConfig()
	if testing.Short() {
		cfg = tiny()
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedApps != cfg.Apps {
		t.Errorf("completed %d of %d apps (sim %.1fs)", res.CompletedApps, cfg.Apps, res.SimSeconds)
	}
	minDecisions := uint64(cfg.Apps * cfg.UnitsPerApp * cfg.ContainersPerUnit)
	if res.Decisions < minDecisions {
		t.Errorf("decisions = %d, want >= %d", res.Decisions, minDecisions)
	}
	if res.LatencyP99MS <= 0 {
		t.Errorf("p99 latency = %v, want > 0", res.LatencyP99MS)
	}
	if len(res.Invariants) > 0 {
		t.Errorf("scheduler invariants violated: %v", res.Invariants)
	}
}

// TestLegacyParity replays the identical workload against the indexed tree
// and the legacy linear-scan tree: every scheduling outcome must match,
// proving the optimization is behavior-preserving.
func TestLegacyParity(t *testing.T) {
	cfg := tiny()
	opt, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy := cfg
	legacy.LegacyScan = true
	base, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Grants != base.Grants || opt.Revokes != base.Revokes {
		t.Errorf("decision streams diverge: optimized %d/%d grants/revokes, legacy %d/%d",
			opt.Grants, opt.Revokes, base.Grants, base.Revokes)
	}
	if opt.CompletedApps != base.CompletedApps {
		t.Errorf("completed apps diverge: %d vs %d", opt.CompletedApps, base.CompletedApps)
	}
	if opt.SimSeconds != base.SimSeconds {
		t.Errorf("virtual end times diverge: %.6f vs %.6f", opt.SimSeconds, base.SimSeconds)
	}
	if opt.LatencyP99MS != base.LatencyP99MS {
		t.Errorf("p99 latency diverges: %v vs %v", opt.LatencyP99MS, base.LatencyP99MS)
	}
}

func TestRunCompareProducesSpeedup(t *testing.T) {
	cfg := tiny()
	cmp, err := RunCompare(cfg, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup <= 0 {
		t.Errorf("speedup = %v, want > 0", cmp.Speedup)
	}
	if cmp.Optimized.Config.LegacyScan || !cmp.Baseline.Config.LegacyScan {
		t.Error("compare ran the wrong scheduler variants")
	}
}

func TestRejectsBadConfig(t *testing.T) {
	cfg := tiny()
	cfg.Racks = 0
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for zero racks")
	}
}
