package scale

import (
	"sort"
	"testing"
	"time"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	c := DefaultConfig()
	c.Racks, c.MachinesPerRack = 4, 5
	c.Apps, c.UnitsPerApp, c.ContainersPerUnit = 20, 5, 2
	c.ArrivalWindow = 5 * 1000 * 1000 // 5 sim-seconds
	c.FailoverEvery = 3 * 1000 * 1000
	return c
}

func TestSmokeRunCompletes(t *testing.T) {
	cfg := SmokeConfig()
	if testing.Short() {
		cfg = tiny()
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedApps != cfg.Apps {
		t.Errorf("completed %d of %d apps (sim %.1fs)", res.CompletedApps, cfg.Apps, res.SimSeconds)
	}
	minDecisions := uint64(cfg.Apps * cfg.UnitsPerApp * cfg.ContainersPerUnit)
	if res.Decisions < minDecisions {
		t.Errorf("decisions = %d, want >= %d", res.Decisions, minDecisions)
	}
	if res.LatencyP99MS <= 0 {
		t.Errorf("p99 latency = %v, want > 0", res.LatencyP99MS)
	}
	if len(res.Invariants) > 0 {
		t.Errorf("scheduler invariants violated: %v", res.Invariants)
	}
}

// TestLegacyParity replays the identical workload against the indexed tree
// and the legacy linear-scan tree: every scheduling outcome must match,
// proving the optimization is behavior-preserving.
func TestLegacyParity(t *testing.T) {
	cfg := tiny()
	opt, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy := cfg
	legacy.LegacyScan = true
	base, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Grants != base.Grants || opt.Revokes != base.Revokes {
		t.Errorf("decision streams diverge: optimized %d/%d grants/revokes, legacy %d/%d",
			opt.Grants, opt.Revokes, base.Grants, base.Revokes)
	}
	if opt.CompletedApps != base.CompletedApps {
		t.Errorf("completed apps diverge: %d vs %d", opt.CompletedApps, base.CompletedApps)
	}
	if opt.SimSeconds != base.SimSeconds {
		t.Errorf("virtual end times diverge: %.6f vs %.6f", opt.SimSeconds, base.SimSeconds)
	}
	if opt.LatencyP99MS != base.LatencyP99MS {
		t.Errorf("p99 latency diverges: %v vs %v", opt.LatencyP99MS, base.LatencyP99MS)
	}
}

func TestRunCompareProducesSpeedup(t *testing.T) {
	cfg := tiny()
	cmp, err := RunCompare(cfg, time.Minute, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup <= 0 {
		t.Errorf("speedup = %v, want > 0", cmp.Speedup)
	}
	if cmp.Optimized.Config.LegacyScan || !cmp.Baseline.Config.LegacyScan {
		t.Error("compare ran the wrong scheduler variants")
	}
	if len(cmp.Parallel) != 1 || cmp.Parallel[0].Config.Shards != 4 {
		t.Fatalf("parallel sections = %+v, want one with shards=4", len(cmp.Parallel))
	}
	if cmp.Parallel[0].Config.RoundWindow != DefaultRoundWindow {
		t.Errorf("parallel round window = %v, want default", cmp.Parallel[0].Config.RoundWindow)
	}
	if cmp.CommonPrefixLatency == nil || cmp.CommonPrefixLatency.Apps == 0 {
		t.Error("no common-prefix latency computed")
	}
}

// TestParallelHarnessDeterministicAcrossShards runs the full control plane
// (rounds enabled) at shard counts 1, 4 and 8 on the same seed: decision
// counts, message counts, completion sets and virtual end times must be
// identical — the tentpole's determinism guarantee measured end to end, not
// just at the scheduler API.
func TestParallelHarnessDeterministicAcrossShards(t *testing.T) {
	var ref *Result
	for _, p := range []int{1, 4, 8} {
		cfg := tiny()
		cfg.Shards = p
		cfg.RoundWindow = DefaultRoundWindow
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CompletedApps != cfg.Apps {
			t.Fatalf("shards=%d: completed %d of %d apps", p, res.CompletedApps, cfg.Apps)
		}
		if len(res.Invariants) > 0 {
			t.Fatalf("shards=%d: invariant violations: %v", p, res.Invariants)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Grants != ref.Grants || res.Revokes != ref.Revokes {
			t.Errorf("shards=%d: decisions %d/%d diverge from shards=1 %d/%d",
				p, res.Grants, res.Revokes, ref.Grants, ref.Revokes)
		}
		if res.MessagesSent != ref.MessagesSent || res.EventsFired != ref.EventsFired {
			t.Errorf("shards=%d: traffic %d msgs/%d events diverges from shards=1 %d/%d",
				p, res.MessagesSent, res.EventsFired, ref.MessagesSent, ref.EventsFired)
		}
		if res.SimSeconds != ref.SimSeconds {
			t.Errorf("shards=%d: sim end %.6f diverges from %.6f", p, res.SimSeconds, ref.SimSeconds)
		}
		if res.LatencyP99MS != ref.LatencyP99MS {
			t.Errorf("shards=%d: p99 %.3f diverges from %.3f", p, res.LatencyP99MS, ref.LatencyP99MS)
		}
	}
}

// TestMasterFailoverTransparency is the metamorphic failover test: the same
// seeded workload run with 0, 1, and 3 mid-run master failovers must finish
// with the identical app completion set and a silent invariant checker —
// the paper's user-transparent failure recovery (§4.1) stated as a property.
func TestMasterFailoverTransparency(t *testing.T) {
	cfg := tiny()
	cfg.CheckInvariants = true
	completedSet := func(r *Result) []string {
		out := append([]string(nil), r.Completed...)
		sort.Strings(out)
		return out
	}

	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.CompletedApps != cfg.Apps {
		t.Fatalf("baseline completed %d of %d apps", base.CompletedApps, cfg.Apps)
	}
	if len(base.Invariants) > 0 {
		t.Fatalf("baseline invariant violations: %v", base.Invariants)
	}
	want := completedSet(base)

	for _, failovers := range []int{1, 3} {
		fcfg := cfg.WithMasterFailovers(failovers)
		res, err := Run(fcfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Invariants) > 0 {
			t.Errorf("%d failovers: invariant violations: %v", failovers, res.Invariants)
		}
		got := completedSet(res)
		if len(got) != len(want) {
			t.Fatalf("%d failovers: completed %d apps, want %d (sim %.1fs)",
				failovers, len(got), len(want), res.SimSeconds)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%d failovers: completion set diverges at %d: %q vs %q",
					failovers, i, got[i], want[i])
			}
		}
		if res.MasterFailovers != failovers {
			t.Errorf("reported %d failovers, want %d", res.MasterFailovers, failovers)
		}
		if res.RecoveryMaxMS <= 0 {
			t.Errorf("%d failovers: no recovery time measured", failovers)
		}
		if res.InvariantChecks == 0 {
			t.Errorf("%d failovers: invariant checker never ran", failovers)
		}
	}
}

// TestMasterFailoverRebuildExact pins the ledger property directly: after
// the run settles, master, agents and application masters agree (the checker
// ran its settled ledger pass because all apps completed).
func TestMasterFailoverRebuildExact(t *testing.T) {
	cfg := tiny().WithMasterFailovers(2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedApps != cfg.Apps {
		t.Fatalf("completed %d of %d apps", res.CompletedApps, cfg.Apps)
	}
	if len(res.Invariants) > 0 {
		t.Errorf("invariant violations after failovers: %v", res.Invariants)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	cfg := tiny()
	cfg.Racks = 0
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for zero racks")
	}
}
