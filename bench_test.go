// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus ablations for the design choices DESIGN.md calls
// out. Secondary metrics (utilization percentages, slowdowns, message
// counts) are attached via b.ReportMetric so `go test -bench=.` prints the
// paper-comparable numbers alongside wall time.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/appmaster"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graysort"
	"repro/internal/job"
	"repro/internal/master"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/scale"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/transport"
)

// benchSynthetic is a reduced §5.2 configuration sized so one iteration
// stays under a second of wall time.
func benchSynthetic(seed int64) experiments.SyntheticOptions {
	return experiments.SyntheticOptions{
		Racks: 8, MachinesPerRack: 5,
		ConcurrentJobs: 40, JobScale: 50,
		DurationSimSec: 60, SampleEverySec: 5,
		Seed: seed,
	}
}

// BenchmarkTable1TraceStats regenerates the production trace statistics.
func BenchmarkTable1TraceStats(b *testing.B) {
	cfg := trace.DefaultProductionConfig()
	var s trace.Stats
	for i := 0; i < b.N; i++ {
		s = trace.Collect(cfg.Generate(rand.New(rand.NewSource(int64(i)))))
	}
	b.ReportMetric(s.AvgInstances, "instances/task")
	b.ReportMetric(s.AvgTasksPerJob, "tasks/job")
}

// BenchmarkFig9SchedulingTime measures real per-request scheduling time of
// the live FuxiMaster scheduler under the synthetic workload (paper: mean
// 0.88 ms, peak < 3 ms).
func BenchmarkFig9SchedulingTime(b *testing.B) {
	var res *experiments.SyntheticResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSynthetic(benchSynthetic(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.SchedMeanMS, "sched-mean-ms")
	b.ReportMetric(res.SchedMaxMS, "sched-max-ms")
}

// BenchmarkFig10aMemoryUtilization reports the steady-state memory
// utilization fractions (paper: FM_planned 97.1%, AM_obtained 95.9%,
// FA_planned 95.2%).
func BenchmarkFig10aMemoryUtilization(b *testing.B) {
	var res *experiments.SyntheticResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSynthetic(benchSynthetic(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(100*res.MemPlannedFrac, "mem-planned-%")
	b.ReportMetric(100*res.MemObtainedFrac, "mem-obtained-%")
	b.ReportMetric(100*res.MemFAFrac, "mem-fa-%")
}

// BenchmarkFig10bCPUUtilization reports the steady-state CPU utilization
// fractions (paper: 92.3% planned, 91.3% obtained).
func BenchmarkFig10bCPUUtilization(b *testing.B) {
	var res *experiments.SyntheticResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSynthetic(benchSynthetic(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(100*res.CPUPlannedFrac, "cpu-planned-%")
	b.ReportMetric(100*res.CPUObtainedFrac, "cpu-obtained-%")
}

// BenchmarkTable2SchedulingOverhead reports the framework overheads (paper:
// JM start 1.91 s, worker start 11.84 s, instance overhead 0.33 s).
func BenchmarkTable2SchedulingOverhead(b *testing.B) {
	var res *experiments.SyntheticResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSynthetic(benchSynthetic(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.AvgJMStartSec, "jm-start-s")
	b.ReportMetric(res.AvgWorkerStartSec, "worker-start-s")
	b.ReportMetric(res.AvgJobRunSec, "job-run-s")
}

// BenchmarkTable3FaultInjection runs the fault matrix at half scale and
// reports the 5% and 10% slowdowns (paper: +15.7% and +19.6%).
func BenchmarkTable3FaultInjection(b *testing.B) {
	var rows []experiments.FaultRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFaultMatrix(experiments.FaultOptions{
			Racks: 15, MachinesPerRack: 10,
			Instances: 2400, Workers: 600, DurationMS: 10_000,
			Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[1].SlowdownPct, "slowdown-5%-pct")
	b.ReportMetric(rows[2].SlowdownPct, "slowdown-10%-pct")
	b.ReportMetric(rows[3].SlowdownPct, "slowdown-5%+kill-pct")
}

// BenchmarkTable4GraySort measures framework overhead factors through the
// real stacks and reports the modelled improvement over the same-cluster
// YARN-style baseline (paper: 66.5% over Yahoo's Hadoop record).
func BenchmarkTable4GraySort(b *testing.B) {
	var res *experiments.GraySortResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.MeasureGraySort(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Fuxi.ThroughputTB, "fuxi-TB/min")
	b.ReportMetric(res.Baseline.ThroughputTB, "baseline-TB/min")
	b.ReportMetric(res.ImprovementPct, "improvement-pct")
}

// BenchmarkPetaSort reports the §5.3 PetaSort estimate (paper: 1 PB in 6 h
// on 2800 nodes).
func BenchmarkPetaSort(b *testing.B) {
	var res *experiments.GraySortResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.MeasureGraySort(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.PetaSort.ElapsedSec/3600, "peta-hours")
}

// BenchmarkInstanceScheduling100k exercises the paper's §4.4 claim that
// scheduling 100 thousand instances takes under 3 seconds: a single task
// with 100k instances is driven through the full JobMaster/TaskMaster stack
// on a 500-machine cluster, and the metric reports wall seconds per 100k
// assignment decisions.
func BenchmarkInstanceScheduling100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := core.NewCluster(core.Config{Racks: 50, MachinesPerRack: 10, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		desc := &job.Description{
			Name: "wide",
			Tasks: map[string]job.TaskSpec{
				"map": {Instances: 100_000, CPUMilli: 100, MemoryMB: 256,
					DurationMS: 10_000, MaxWorkers: 10_000},
			},
		}
		h, err := c.SubmitJob(desc, core.JobOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for !h.Done() && c.Now() < sim.Hour {
			c.Run(10 * sim.Second)
		}
		if !h.Done() {
			b.Fatal("wide job incomplete")
		}
	}
}

// BenchmarkScaleHarness runs the paper-scale stress harness (internal/scale)
// at its CI smoke size and reports scheduling-decision throughput, p99
// demand-to-grant latency in virtual time, and allocations per decision —
// the same metrics cmd/scalesim writes to BENCH_scale.json at the full
// 5,000-machine footprint, tracked here across PRs.
func BenchmarkScaleHarness(b *testing.B) {
	var res *scale.Result
	for i := 0; i < b.N; i++ {
		cfg := scale.SmokeConfig()
		cfg.Seed = int64(i + 1)
		r, err := scale.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.CompletedApps != cfg.Apps {
			b.Fatalf("completed %d of %d apps", r.CompletedApps, cfg.Apps)
		}
		res = r
	}
	b.ReportMetric(res.DecisionsPerSec, "decisions/s")
	b.ReportMetric(res.LatencyP99MS, "p99-sim-ms")
	b.ReportMetric(res.AllocsPerDecision, "allocs/decision")
}

// BenchmarkScaleHarnessLegacy is the same workload on the pre-optimization
// scheduler (flat locality-tree scan), so `go test -bench Scale` shows the
// optimization ratio directly.
func BenchmarkScaleHarnessLegacy(b *testing.B) {
	var res *scale.Result
	for i := 0; i < b.N; i++ {
		cfg := scale.SmokeConfig()
		cfg.Seed = int64(i + 1)
		cfg.LegacyScan = true
		r, err := scale.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.DecisionsPerSec, "decisions/s")
	b.ReportMetric(res.LatencyP99MS, "p99-sim-ms")
}

// ---------------------------------------------------------------------------
// ablations
// ---------------------------------------------------------------------------

// BenchmarkAblationIncrementalVsFull compares control-plane traffic for the
// same allocation outcome: Fuxi's one-shot incremental demand versus the
// baseline's per-heartbeat full-demand re-assertion while waiting on a busy
// cluster.
func BenchmarkAblationIncrementalVsFull(b *testing.B) {
	var fuxiMsgs, baseMsgs float64
	for i := 0; i < b.N; i++ {
		// Fuxi: demand stated once; master queues the unmet remainder and
		// auto-grants on free-up. Count demand-assertion messages only.
		c, err := core.NewCluster(core.Config{Racks: 1, MachinesPerRack: 2, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		demandMsgs := 0
		c.Net.Tap = func(from, to string, msg transport.Message) {
			switch msg.(type) {
			case protocol.DemandUpdate, protocol.FullDemandSync:
				demandMsgs++
			}
		}
		am := c.NewAppMaster(appmaster.Config{
			App:   "incr",
			Units: []resource.ScheduleUnit{{ID: 1, Priority: 1, MaxCount: 500, Size: resource.New(1000, 2048)}},
		}, appmaster.Callbacks{})
		c.Run(100 * sim.Millisecond)
		am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 500}) // far beyond capacity
		c.Run(60 * sim.Second)
		fuxiMsgs = float64(demandMsgs)

		// Baseline: full request re-sent every heartbeat while unsatisfied.
		eng := sim.NewEngine(int64(i + 1))
		net := transport.NewNet(eng)
		top, err := topology.Build(topology.Spec{
			Racks: 1, MachinesPerRack: 2, MachineCapacity: topology.PaperTestbedMachine(),
		})
		if err != nil {
			b.Fatal(err)
		}
		requests := 0
		net.Tap = func(from, to string, msg transport.Message) {
			if to == baseline.RMEndpoint {
				requests++
			}
		}
		baseline.NewRM(eng, net, top)
		baseline.NewAM(baseline.AMConfig{
			App: "full", Size: resource.New(1000, 2048),
			Instances: 500, Duration: 5 * sim.Minute, Heartbeat: sim.Second,
		}, eng, net)
		eng.Run(60 * sim.Second)
		baseMsgs = float64(requests)
	}
	b.ReportMetric(fuxiMsgs, "fuxi-demand-msgs")
	b.ReportMetric(baseMsgs, "baseline-demand-msgs")
}

// BenchmarkAblationLocalityTreeVsRescan isolates the scheduling data
// structure (paper §3.1: "only the changed part will be calculated"). A
// resource free-up on machine M consults only M's, M's rack's and the
// cluster's waiting queues (Fuxi's locality tree), versus a full
// machine-list rescan per heartbeat (baseline RM). The tree's cost stays
// flat as the cluster grows; the rescan grows linearly — compare ns/op
// across the cluster sizes.
func BenchmarkAblationLocalityTreeVsRescan(b *testing.B) {
	for _, racks := range []int{50, 200, 500} {
		machines := racks * 10
		top, err := topology.Build(topology.Spec{
			Racks: racks, MachinesPerRack: 10, MachineCapacity: topology.PaperTestbedMachine(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("locality-tree/"+itoa(machines), func(b *testing.B) {
			s := master.NewScheduler(top, master.Options{})
			unit := resource.ScheduleUnit{ID: 1, Priority: 1, MaxCount: 1 << 30, Size: resource.New(1000, 2048)}
			if err := s.RegisterApp("holder", "", []resource.ScheduleUnit{unit}); err != nil {
				b.Fatal(err)
			}
			if err := s.RegisterApp("waiter", "", []resource.ScheduleUnit{unit}); err != nil {
				b.Fatal(err)
			}
			// Fill the cluster, then queue a large waiting demand.
			if _, err := s.UpdateDemand("holder", 1, []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 12 * machines}}); err != nil {
				b.Fatal(err)
			}
			if _, err := s.UpdateDemand("waiter", 1, []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 1 << 20}}); err != nil {
				b.Fatal(err)
			}
			names := top.Machines()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := names[i%len(names)]
				// waiter gives one back; the tree regrants it immediately —
				// one machine's queues consulted, no full rescan.
				if _, err := s.Return("waiter", 1, m, 1); err != nil {
					// First pass: waiter holds nothing on m yet; free one of
					// holder's so waiter gets it.
					if _, err2 := s.Return("holder", 1, m, 1); err2 != nil {
						b.Fatal(err, err2)
					}
				}
			}
		})
		b.Run("full-rescan/"+itoa(machines), func(b *testing.B) {
			eng := sim.NewEngine(1)
			net := transport.NewNet(eng)
			net.Register("app", func(transport.EndpointID, transport.Message) {})
			rm := baseline.NewRM(eng, net, top)
			// Drain the pool so each heartbeat's request re-scans the whole
			// busy cluster and finds nothing — the steady state of a waiting
			// application under the heartbeat protocol.
			rm.HandleForBench("app", resource.New(1000, 2048), 1<<24)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rm.HandleForBench("app", resource.New(1000, 2048), 1)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationContainerReuse compares measured framework overhead
// factors with containers reused across instances (Fuxi) versus reclaimed
// per instance (YARN-style), paper §3.2.3.
func BenchmarkAblationContainerReuse(b *testing.B) {
	cfg := graysort.OverheadConfig{
		Nodes: 10, WorkersPerNode: 4, Waves: 6,
		TaskDurationMS: 15_000, WorkerStartDelayMS: 5_000,
	}
	var fuxi, base float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		f, err := graysort.MeasureFuxi(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bl, err := graysort.MeasureBaseline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fuxi, base = f, bl
	}
	b.ReportMetric(fuxi, "fuxi-overhead-x")
	b.ReportMetric(base, "reclaim-overhead-x")
}

// BenchmarkAblationBackupInstances measures the long-tail mitigation of
// §4.3.2: the same job on a cluster with slow machines, speculative
// execution on versus off.
func BenchmarkAblationBackupInstances(b *testing.B) {
	run := func(seed int64, backups bool) float64 {
		c, err := core.NewCluster(core.Config{Racks: 2, MachinesPerRack: 5, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		c.SetSlowdown("r000m000", 10)
		c.SetSlowdown("r001m000", 10)
		desc := &job.Description{
			Name: "tail",
			Tasks: map[string]job.TaskSpec{
				"map": {Instances: 200, CPUMilli: 1000, MemoryMB: 2048,
					DurationMS: 5_000, MaxWorkers: 40, NormalDurationMS: 10_000},
			},
		}
		h, err := c.SubmitJob(desc, core.JobOptions{Config: job.Config{
			Backup: job.BackupConfig{Enabled: backups, ScanInterval: 2 * sim.Second},
		}})
		if err != nil {
			b.Fatal(err)
		}
		for !h.Done() && c.Now() < sim.Hour {
			c.Run(sim.Second)
		}
		if !h.Done() {
			b.Fatal("tail job incomplete")
		}
		return h.ElapsedSeconds()
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(int64(i+1), true)
		without = run(int64(i+1), false)
	}
	b.ReportMetric(with, "with-backups-s")
	b.ReportMetric(without, "without-backups-s")
}

// BenchmarkAblationBatchedRequests measures the effect of merging frequent
// demand updates (paper §3.4 "similar requests are merged compactly and
// handled in a batch mode"): scheduler invocations with and without a batch
// window under a chatty application.
func BenchmarkAblationBatchedRequests(b *testing.B) {
	run := func(seed int64, window sim.Time) float64 {
		mcfg := master.DefaultConfig("fm-1")
		mcfg.BatchWindow = window
		c, err := core.NewCluster(core.Config{
			Racks: 2, MachinesPerRack: 5, Seed: seed, Master: mcfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		am := c.NewAppMaster(appmaster.Config{
			App:   "chatty",
			Units: []resource.ScheduleUnit{{ID: 1, Priority: 1, MaxCount: 10_000, Size: resource.New(100, 256)}},
		}, appmaster.Callbacks{})
		c.Run(100 * sim.Millisecond)
		// A demand update every 2 ms for one virtual second: the paper's
		// "frequently changing resource requests from one application".
		for i := 0; i < 500; i++ {
			am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 1})
			c.Run(2 * sim.Millisecond)
		}
		c.Run(sim.Second)
		return float64(c.Metrics.Histogram("master.sched_ms").Count())
	}
	var batched, unbatched float64
	for i := 0; i < b.N; i++ {
		unbatched = run(int64(i+1), 0)
		batched = run(int64(i+1), 50*sim.Millisecond)
	}
	b.ReportMetric(unbatched, "sched-calls-unbatched")
	b.ReportMetric(batched, "sched-calls-batched")
}

// BenchmarkSortKernel measures the real in-memory GraySort kernel.
func BenchmarkSortKernel(b *testing.B) {
	recs := graysort.Generate(rand.New(rand.NewSource(1)), 100_000)
	b.SetBytes(int64(len(recs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := graysort.Sort(recs)
		if !graysort.Sorted(out) {
			b.Fatal("unsorted")
		}
	}
}
